#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace nose {
namespace obs {

namespace {

/// CAS-loop add for pre-C++20-library atomics on double.
void AtomicAdd(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur && !target->compare_exchange_weak(cur, v,
                                                   std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur && !target->compare_exchange_weak(cur, v,
                                                   std::memory_order_relaxed)) {
  }
}

/// Strict-JSON double rendering: NaN/Inf have no JSON spelling, so they
/// degrade to 0 (snapshot files must survive `python -m json.tool`).
void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

/// OpenMetrics names admit only [a-zA-Z0-9_:]; the registry's dotted
/// convention maps '.' (and anything else) to '_'.
std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

}  // namespace

void Gauge::SetMax(double v) { AtomicMax(&value_, v); }

void Histogram::Observe(double v) {
  const uint64_t seen = count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
  if (seen == 0) {
    // First observation seeds min; races with a concurrent first observer
    // resolve through the CAS loops below.
    double expected = 0.0;
    min_.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  }
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
  // Bucket index: exponent of v relative to 2^-30 (~1e-9), clamped.
  int idx = 0;
  if (v > 0.0) {
    idx = std::ilogb(v) + 30;
    if (idx < 0) idx = 0;
    if (idx >= static_cast<int>(kNumBuckets)) idx = kNumBuckets - 1;
  }
  buckets_[static_cast<size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::BucketBound(size_t i) {
  return std::ldexp(1.0, static_cast<int>(i) - 30 + 1);
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(n);
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t b = bucket(i);
    if (b == 0) continue;
    if (static_cast<double>(cum) + static_cast<double>(b) >= rank) {
      // Interpolate linearly within the landing bucket, then clamp to the
      // exact observed envelope (the bucket bounds can overshoot it).
      const double lower = i == 0 ? 0.0 : BucketBound(i - 1);
      const double upper = BucketBound(i);
      double frac = (rank - static_cast<double>(cum)) / static_cast<double>(b);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      double v = lower + (upper - lower) * frac;
      if (v > max()) v = max();
      if (v < min()) v = min();
      return v;
    }
    cum += b;
  }
  return max();
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":";
    AppendDouble(&out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    const uint64_t n = h->count();
    out += "\"" + name + "\":{\"count\":" + std::to_string(n) + ",\"sum\":";
    AppendDouble(&out, h->sum());
    out += ",\"min\":";
    AppendDouble(&out, h->min());
    out += ",\"max\":";
    AppendDouble(&out, h->max());
    out += ",\"mean\":";
    AppendDouble(&out, n == 0 ? 0.0 : h->sum() / static_cast<double>(n));
    out += ",\"p50\":";
    AppendDouble(&out, h->Quantile(0.50));
    out += ",\"p95\":";
    AppendDouble(&out, h->Quantile(0.95));
    out += ",\"p99\":";
    AppendDouble(&out, h->Quantile(0.99));
    out += ",\"buckets\":{";
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t b = h->bucket(i);
      if (b == 0) continue;  // sparse: empty buckets add noise, not data
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      char bound[48];
      std::snprintf(bound, sizeof(bound), "\"le_%.6g\":",
                    Histogram::BucketBound(i));
      out += bound;
      out += std::to_string(b);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToOpenMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string m = SanitizeMetricName(name);
    out += "# TYPE " + m + " counter\n";
    out += m + "_total " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string m = SanitizeMetricName(name);
    out += "# TYPE " + m + " gauge\n";
    out += m + " ";
    AppendDouble(&out, g->value());
    out.push_back('\n');
  }
  for (const auto& [name, h] : histograms_) {
    const std::string m = SanitizeMetricName(name);
    out += "# TYPE " + m + " histogram\n";
    uint64_t cum = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t b = h->bucket(i);
      if (b == 0) continue;
      cum += b;
      char bound[64];
      std::snprintf(bound, sizeof(bound), "%.6g", Histogram::BucketBound(i));
      out += m + "_bucket{le=\"" + bound + "\"} " + std::to_string(cum) + "\n";
    }
    out += m + "_bucket{le=\"+Inf\"} " + std::to_string(h->count()) + "\n";
    out += m + "_sum ";
    AppendDouble(&out, h->sum());
    out.push_back('\n');
    out += m + "_count " + std::to_string(h->count()) + "\n";
  }
  out += "# EOF\n";
  return out;
}

bool MetricsRegistry::WriteJson(const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << ToJson() << "\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool MetricsRegistry::WriteOpenMetrics(const std::string& path,
                                       std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << ToOpenMetrics();
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace nose
