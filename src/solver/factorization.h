#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace nose {

/// One sparse column of the constraint matrix: parallel (row, value)
/// arrays. Rows need not be sorted; duplicates are not allowed.
struct SparseColumn {
  std::vector<int> rows;
  std::vector<double> vals;
};

/// LU factorization of a simplex basis with product-form updates — the
/// machinery behind `LpEngine::kFactorized`.
///
/// `Factorize` runs Markowitz-pivoted sparse Gaussian elimination on the
/// basis matrix B (columns supplied in slot order): at each step it picks
/// the admissible entry minimizing (row_count-1)·(col_count-1) among
/// entries within kMarkowitzTau of their column's magnitude, which keeps
/// the L/U fill near the basis' own nonzero count for the near-triangular
/// bases NoSE's LPs produce. `Update` appends a product-form eta per basis
/// change (the eta column is the FTRAN image of the entering column, which
/// the simplex ratio test already computed), refusing pivots too small to
/// apply stably so the caller can refactorize instead. `Ftran`/`Btran`
/// solve B·z = b and Bᵀ·y = c against L, U, and the eta file.
///
/// Index spaces: `Ftran` maps a row-indexed vector to a slot-indexed one
/// (slot = basis position), `Btran` the reverse. Not thread-safe: solves
/// share internal scratch.
class BasisFactorization {
 public:
  /// Factorizes the m×m matrix whose k-th column is *cols[k]. Returns
  /// false (leaving the object unfactorized) when the matrix is singular
  /// within the pivot tolerance. Resets the eta file.
  bool Factorize(int m, const std::vector<const SparseColumn*>& cols);

  bool factorized() const { return m_ >= 0; }
  int dim() const { return m_; }

  /// v := B⁻¹·v. Input indexed by row, output indexed by slot.
  void Ftran(std::vector<double>* v) const;
  /// v := B⁻ᵀ·v. Input indexed by slot, output indexed by row.
  void Btran(std::vector<double>* v) const;

  /// Replaces the basis column at `slot` with the column whose FTRAN image
  /// is `ftran_column` (dense, slot-indexed), by appending a product-form
  /// eta. Returns false — with the factorization unchanged — when the eta
  /// pivot `ftran_column[slot]` is too small to apply stably; the caller
  /// should refactorize with the new basis instead.
  bool Update(int slot, const std::vector<double>& ftran_column);
  /// Last-resort variant of `Update` that always appends, for when a
  /// refactorization of the new basis failed numerically.
  void ForceUpdate(int slot, const std::vector<double>& ftran_column);

  /// True once the eta file is long or filled-in enough that collapsing it
  /// into a fresh factorization is worth the cost.
  bool NeedsRefactorization() const;

  int num_updates() const { return static_cast<int>(etas_.size()); }
  /// L + U nonzeros (including U's diagonal) of the base factorization.
  uint64_t lu_entries() const { return lu_nnz_; }
  /// Nonzeros across the appended eta columns.
  uint64_t eta_entries() const { return eta_nnz_; }
  /// Total stored factor entries — the fill measure telemetry samples.
  uint64_t stored_entries() const { return lu_nnz_ + eta_nnz_; }

 private:
  struct Eta {
    int slot = -1;
    double pivot = 0.0;
    std::vector<std::pair<int, double>> other;  // (slot, value), slot ≠ pivot
  };

  void AppendEta(int slot, const std::vector<double>& ftran_column);

  int m_ = -1;
  std::vector<int> prow_;      // step -> pivot row id
  std::vector<int> pcol_;      // step -> pivot column (slot) id
  std::vector<int> col_step_;  // slot id -> elimination step
  /// L stored by elimination step: unit-diagonal multiplier columns over
  /// original row ids.
  std::vector<std::vector<std::pair<int, double>>> lcols_;
  /// U stored by elimination step: off-diagonal entries (slot id, value);
  /// the diagonal pivot lives in udiag_.
  std::vector<std::vector<std::pair<int, double>>> urows_;
  std::vector<double> udiag_;
  std::vector<Eta> etas_;
  uint64_t lu_nnz_ = 0;
  uint64_t eta_nnz_ = 0;
  mutable std::vector<double> scratch_;
};

}  // namespace nose
