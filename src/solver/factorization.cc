#include "solver/factorization.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nose {
namespace {

/// Relative stability threshold for Markowitz pivots: an entry is
/// admissible only within this factor of its column's largest magnitude,
/// bounding element growth while leaving the fill heuristic room to pick.
constexpr double kMarkowitzTau = 0.1;
/// Absolute floor below which an entry never pivots (treated as noise).
constexpr double kAbsPivotTol = 1e-11;
/// Eta pivots smaller than this (relative to the eta column's magnitude)
/// refuse to append — the caller refactorizes instead.
constexpr double kEtaRelTol = 1e-6;
constexpr double kEtaAbsTol = 1e-9;
/// Refactorization triggers: eta count, and eta fill relative to the base
/// factorization (a long eta file makes every FTRAN/BTRAN pay for it).
constexpr int kMaxEtas = 64;

}  // namespace

bool BasisFactorization::Factorize(
    int m, const std::vector<const SparseColumn*>& cols) {
  assert(static_cast<int>(cols.size()) == m);
  m_ = -1;
  etas_.clear();
  eta_nnz_ = 0;
  lu_nnz_ = 0;
  prow_.assign(static_cast<size_t>(m), -1);
  pcol_.assign(static_cast<size_t>(m), -1);
  col_step_.assign(static_cast<size_t>(m), -1);
  lcols_.assign(static_cast<size_t>(m), {});
  urows_.assign(static_cast<size_t>(m), {});
  udiag_.assign(static_cast<size_t>(m), 0.0);

  // Working matrix: one unsorted (row, value) vector per column, plus the
  // active-row nonzero counts the Markowitz heuristic needs.
  std::vector<std::vector<std::pair<int, double>>> w(static_cast<size_t>(m));
  std::vector<int> row_count(static_cast<size_t>(m), 0);
  std::vector<char> row_active(static_cast<size_t>(m), 1);
  std::vector<char> col_active(static_cast<size_t>(m), 1);
  for (int j = 0; j < m; ++j) {
    const SparseColumn& src = *cols[static_cast<size_t>(j)];
    auto& col = w[static_cast<size_t>(j)];
    col.reserve(src.rows.size());
    for (size_t k = 0; k < src.rows.size(); ++k) {
      if (src.vals[k] == 0.0) continue;
      assert(src.rows[k] >= 0 && src.rows[k] < m);
      col.emplace_back(src.rows[k], src.vals[k]);
      ++row_count[static_cast<size_t>(src.rows[k])];
    }
  }

  // Dense scatter buffer for the column updates.
  std::vector<double> buf(static_cast<size_t>(m), 0.0);
  std::vector<char> mark(static_cast<size_t>(m), 0);
  std::vector<int> touched;
  touched.reserve(static_cast<size_t>(m));

  for (int step = 0; step < m; ++step) {
    // --- Markowitz pivot selection: scan every active entry once. ---
    int best_row = -1;
    int best_col = -1;
    double best_val = 0.0;
    int64_t best_cost = -1;
    double best_mag = 0.0;
    for (int j = 0; j < m && best_cost != 0; ++j) {
      if (!col_active[static_cast<size_t>(j)]) continue;
      const auto& col = w[static_cast<size_t>(j)];
      double colmax = 0.0;
      for (const auto& [i, v] : col) colmax = std::max(colmax, std::abs(v));
      if (colmax <= kAbsPivotTol) continue;
      const int64_t cn = static_cast<int64_t>(col.size()) - 1;
      for (const auto& [i, v] : col) {
        const double mag = std::abs(v);
        if (mag < kMarkowitzTau * colmax || mag <= kAbsPivotTol) continue;
        const int64_t cost =
            (static_cast<int64_t>(row_count[static_cast<size_t>(i)]) - 1) * cn;
        // Deterministic preference: lowest Markowitz cost, then largest
        // magnitude, then lowest row id (columns already scan ascending).
        const bool better =
            best_cost < 0 || cost < best_cost ||
            (cost == best_cost && best_col == j &&
             (mag > best_mag || (mag == best_mag && i < best_row)));
        if (better) {
          best_cost = cost;
          best_mag = mag;
          best_row = i;
          best_col = j;
          best_val = v;
          if (cost == 0 && mag == colmax) break;
        }
      }
    }
    if (best_col < 0) return false;  // singular within tolerance

    const int pr = best_row;
    const int pc = best_col;
    const double pivot = best_val;
    prow_[static_cast<size_t>(step)] = pr;
    pcol_[static_cast<size_t>(step)] = pc;
    col_step_[static_cast<size_t>(pc)] = step;
    udiag_[static_cast<size_t>(step)] = pivot;
    row_active[static_cast<size_t>(pr)] = 0;
    col_active[static_cast<size_t>(pc)] = 0;

    // L multipliers from the pivot column's remaining active rows.
    auto& lcol = lcols_[static_cast<size_t>(step)];
    const double inv = 1.0 / pivot;
    for (const auto& [i, v] : w[static_cast<size_t>(pc)]) {
      if (i == pr) continue;
      lcol.emplace_back(i, v * inv);
      --row_count[static_cast<size_t>(i)];
    }
    w[static_cast<size_t>(pc)].clear();
    w[static_cast<size_t>(pc)].shrink_to_fit();

    // Eliminate the pivot row from every remaining column that carries it;
    // the removed entries form U's row for this step.
    auto& urow = urows_[static_cast<size_t>(step)];
    for (int j = 0; j < m; ++j) {
      if (!col_active[static_cast<size_t>(j)]) continue;
      auto& col = w[static_cast<size_t>(j)];
      double u = 0.0;
      bool has = false;
      for (const auto& [i, v] : col) {
        if (i == pr) {
          u = v;
          has = true;
          break;
        }
      }
      if (!has || u == 0.0) {
        if (has) {  // exact-zero entry: drop it from the active matrix
          col.erase(std::remove_if(col.begin(), col.end(),
                                   [pr](const auto& e) {
                                     return e.first == pr;
                                   }),
                    col.end());
        }
        continue;
      }
      urow.emplace_back(j, u);
      // Scatter, update, gather: col := col − u · lcol, minus the pivot row.
      touched.clear();
      for (const auto& [i, v] : col) {
        if (i == pr) continue;
        buf[static_cast<size_t>(i)] = v;
        mark[static_cast<size_t>(i)] = 1;
        touched.push_back(i);
      }
      for (const auto& [i, mult] : lcol) {
        if (!mark[static_cast<size_t>(i)]) {
          buf[static_cast<size_t>(i)] = 0.0;
          mark[static_cast<size_t>(i)] = 1;
          touched.push_back(i);
          ++row_count[static_cast<size_t>(i)];  // fill-in (may cancel below)
        }
        buf[static_cast<size_t>(i)] -= mult * u;
      }
      col.clear();
      for (const int i : touched) {
        mark[static_cast<size_t>(i)] = 0;
        const double v = buf[static_cast<size_t>(i)];
        if (v == 0.0) {  // exact cancellation only — no drop tolerance
          --row_count[static_cast<size_t>(i)];
          continue;
        }
        col.emplace_back(i, v);
      }
      --row_count[static_cast<size_t>(pr)];
    }
  }

  lu_nnz_ = static_cast<uint64_t>(m);  // U diagonal
  for (const auto& lcol : lcols_) lu_nnz_ += lcol.size();
  for (const auto& urow : urows_) lu_nnz_ += urow.size();
  m_ = m;
  scratch_.assign(static_cast<size_t>(m), 0.0);
  return true;
}

void BasisFactorization::Ftran(std::vector<double>* v) const {
  assert(m_ >= 0 && static_cast<int>(v->size()) == m_);
  std::vector<double>& work = *v;
  // L solve (forward, unit diagonal): y_k lives at work[prow_[k]] once step
  // k has run; later steps never touch already-pivoted rows.
  for (int k = 0; k < m_; ++k) {
    const double yk = work[static_cast<size_t>(prow_[static_cast<size_t>(k)])];
    if (yk == 0.0) continue;
    for (const auto& [i, mult] : lcols_[static_cast<size_t>(k)]) {
      work[static_cast<size_t>(i)] -= mult * yk;
    }
  }
  // U solve (backward) into slot space.
  std::vector<double>& x = scratch_;
  for (int k = m_ - 1; k >= 0; --k) {
    double acc = work[static_cast<size_t>(prow_[static_cast<size_t>(k)])];
    for (const auto& [slot, u] : urows_[static_cast<size_t>(k)]) {
      const double xs = x[static_cast<size_t>(slot)];
      if (xs != 0.0) acc -= u * xs;
    }
    x[static_cast<size_t>(pcol_[static_cast<size_t>(k)])] =
        acc / udiag_[static_cast<size_t>(k)];
  }
  work.swap(x);
  // Product-form etas, oldest first.
  for (const Eta& eta : etas_) {
    const double t = work[static_cast<size_t>(eta.slot)] / eta.pivot;
    work[static_cast<size_t>(eta.slot)] = t;
    if (t == 0.0) continue;
    for (const auto& [slot, val] : eta.other) {
      work[static_cast<size_t>(slot)] -= val * t;
    }
  }
}

void BasisFactorization::Btran(std::vector<double>* v) const {
  assert(m_ >= 0 && static_cast<int>(v->size()) == m_);
  std::vector<double>& work = *v;
  // Eta transposes, newest first: z = E⁻ᵀ y touches only the pivot slot.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = work[static_cast<size_t>(it->slot)];
    for (const auto& [slot, val] : it->other) {
      const double y = work[static_cast<size_t>(slot)];
      if (y != 0.0) acc -= val * y;
    }
    work[static_cast<size_t>(it->slot)] = acc / it->pivot;
  }
  // Uᵀ solve (forward in step order, saxpy form over U's rows).
  std::vector<double>& acc = scratch_;
  for (int k = 0; k < m_; ++k) {
    acc[static_cast<size_t>(k)] =
        work[static_cast<size_t>(pcol_[static_cast<size_t>(k)])];
  }
  for (int k = 0; k < m_; ++k) {
    const double vk =
        acc[static_cast<size_t>(k)] / udiag_[static_cast<size_t>(k)];
    acc[static_cast<size_t>(k)] = vk;
    if (vk == 0.0) continue;
    for (const auto& [slot, u] : urows_[static_cast<size_t>(k)]) {
      acc[static_cast<size_t>(col_step_[static_cast<size_t>(slot)])] -=
          u * vk;
    }
  }
  // Lᵀ solve (backward): w[prow_[k]] = v_k − l_kᵀ·w.
  for (int k = m_ - 1; k >= 0; --k) {
    double wk = acc[static_cast<size_t>(k)];
    for (const auto& [i, mult] : lcols_[static_cast<size_t>(k)]) {
      const double wi = work[static_cast<size_t>(i)];
      if (wi != 0.0) wk -= mult * wi;
    }
    work[static_cast<size_t>(prow_[static_cast<size_t>(k)])] = wk;
  }
}

void BasisFactorization::AppendEta(int slot,
                                   const std::vector<double>& ftran_column) {
  Eta eta;
  eta.slot = slot;
  eta.pivot = ftran_column[static_cast<size_t>(slot)];
  for (int i = 0; i < m_; ++i) {
    if (i == slot) continue;
    const double v = ftran_column[static_cast<size_t>(i)];
    if (v != 0.0) eta.other.emplace_back(i, v);
  }
  eta_nnz_ += eta.other.size() + 1;
  etas_.push_back(std::move(eta));
}

bool BasisFactorization::Update(int slot,
                                const std::vector<double>& ftran_column) {
  assert(m_ >= 0 && static_cast<int>(ftran_column.size()) == m_);
  const double pivot = ftran_column[static_cast<size_t>(slot)];
  double maxabs = 0.0;
  for (const double v : ftran_column) maxabs = std::max(maxabs, std::abs(v));
  if (std::abs(pivot) <= kEtaAbsTol ||
      std::abs(pivot) < kEtaRelTol * maxabs) {
    return false;
  }
  AppendEta(slot, ftran_column);
  return true;
}

void BasisFactorization::ForceUpdate(int slot,
                                     const std::vector<double>& ftran_column) {
  assert(m_ >= 0 &&
         ftran_column[static_cast<size_t>(slot)] != 0.0);
  AppendEta(slot, ftran_column);
}

bool BasisFactorization::NeedsRefactorization() const {
  if (static_cast<int>(etas_.size()) >= kMaxEtas) return true;
  return eta_nnz_ > 1024 && eta_nnz_ > 2 * lu_nnz_;
}

}  // namespace nose
