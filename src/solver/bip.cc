#include "solver/bip.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <tuple>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "solver/certificate.h"
#include "solver/presolve.h"
#include "solver/solve_log.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace nose {

const char* BipStatusName(BipStatus status) {
  switch (status) {
    case BipStatus::kOptimal:
      return "optimal";
    case BipStatus::kInfeasible:
      return "infeasible";
    case BipStatus::kNodeLimit:
      return "node-limit";
    case BipStatus::kNoSolution:
      return "no-solution";
  }
  return "?";
}

namespace {

struct Node {
  /// Per-binary-variable fixings accumulated along the branch:
  /// (var, lb, ub) with lb == ub ∈ {0, 1}.
  std::vector<std::tuple<int, double, double>> fixings;
  double parent_bound;  // LP bound of the parent (for pruning before solve)
  /// Parent's optimal basis, shared by both children — the per-node hot
  /// start (factorized engine only; null = cold start).
  std::shared_ptr<const LpBasis> start;
};

/// Nodes are explored in fixed-size batches: up to this many survivors of
/// the parent-bound prune are popped together, their relaxations solved
/// (concurrently when a pool is available), and the results processed in
/// pop order. The batch size — not the thread count — defines the
/// trajectory, so recommendations are byte-identical at any parallelism.
/// Same fixed-batch determinism rule as the combinatorial solver's
/// kEvalBatch.
constexpr int kNodeBatch = 16;

/// Picks the branching variable: among fractional binaries, the one with
/// the largest fractionality weighted by its objective coefficient.
/// High-cost variables (e.g. maintenance-heavy column families) drive the
/// LP bound up fastest when resolved. Returns -1 if all integral.
int PickBranchVariable(const LpProblem& problem, const std::vector<double>& x,
                       const std::vector<int>& binary_vars, double tol) {
  double max_cost = 0.0;
  for (int var : binary_vars) {
    max_cost = std::max(max_cost, std::abs(problem.cost(var)));
  }
  int best = -1;
  double best_score = 0.0;
  for (int var : binary_vars) {
    const double v = x[static_cast<size_t>(var)];
    const double dist = std::min(v - std::floor(v), std::ceil(v) - v);
    if (dist <= tol) continue;
    const double score =
        dist * (std::abs(problem.cost(var)) + 0.01 * max_cost + 1e-12);
    if (score > best_score) {
      best_score = score;
      best = var;
    }
  }
  return best;
}

}  // namespace

BipResult SolveBip(const LpProblem& problem, const std::vector<int>& binary_vars,
                   const BipOptions& options) {
  obs::Span span("solver.bip", "solver");
  BipResult result;
  // Solver telemetry (--solve-log). BeginBip stamps this thread's context so
  // every LP solved below (including the certificate root solve) is
  // attributed to this search; the guard clears it on every return path.
  SolveLog& slog = SolveLog::Global();
  const bool logging = slog.enabled();
  const uint64_t bip_id = logging ? slog.BeginBip() : 0;
  struct ContextGuard {
    bool active;
    ~ContextGuard() {
      if (active) SolveLog::ClearContext();
    }
  } context_guard{logging};
  BipSolveStats bstats;
  Stopwatch bip_watch;
  if (logging) {
    bstats.id = bip_id;
    bstats.vars = problem.num_variables();
    bstats.rows = problem.num_rows();
    bstats.nonzeros = problem.num_nonzeros();
    bstats.binaries = static_cast<int>(binary_vars.size());
    bstats.root_hot_start_attempted =
        options.root_basis != nullptr && !options.root_basis->empty();
  }
  auto record_bip = [&]() {
    if (!logging) return;
    bstats.status = BipStatusName(result.status);
    bstats.objective = result.objective;
    bstats.nodes_explored = result.nodes_explored;
    bstats.lp_iterations = static_cast<uint64_t>(result.lp_iterations);
    bstats.solve_ms = bip_watch.ElapsedMillis();
    slog.RecordBip(bstats);
  };
  if (options.capture_root_basis != nullptr) {
    options.capture_root_basis->clear();
  }
  SolveCertificate* cert = options.capture_certificate;
  if (cert != nullptr) {
    const std::string instance = std::move(cert->instance);
    *cert = SolveCertificate();
    cert->instance = instance;
    cert->problem = problem;
    cert->binary_vars = binary_vars;
    // Harvest duals from one cold solve of the ORIGINAL root relaxation
    // (not the presolved one, whose rows the checker never sees). The
    // solution path below is untouched: this solve exists only to certify.
    std::vector<double> duals;
    LpResult root = problem.Solve({}, /*max_iterations=*/0,
                                  /*deadline_seconds=*/0.0, options.lp_engine,
                                  /*start_basis=*/nullptr,
                                  /*final_basis=*/nullptr, &duals);
    if (root.status == LpStatus::kOptimal &&
        duals.size() == static_cast<size_t>(problem.num_rows())) {
      cert->root_available = true;
      cert->root_objective = root.objective;
      cert->root_duals = std::move(duals);
    }
  }

  // Exact reductions once, up front; every node then relaxes the smaller
  // instance. Variables keep their indices, so fixings, warm starts, and
  // the extracted solution are unaffected.
  PresolveSummary presolve_summary;
  LpProblem reduced;
  const LpProblem* relax = &problem;
  if (options.presolve) {
    reduced = PresolveForBip(problem, binary_vars, &presolve_summary);
    if (logging) {
      bstats.presolved = true;
      bstats.presolve_rows_dropped = presolve_summary.singleton_rows_dropped +
                                     presolve_summary.duplicate_rows_dropped +
                                     presolve_summary.scaled_duplicate_rows_dropped +
                                     presolve_summary.dominated_rows_dropped +
                                     presolve_summary.redundant_rows_dropped;
      bstats.presolve_bounds_tightened =
          presolve_summary.bounds_tightened +
          presolve_summary.activity_bounds_tightened;
    }
    if (presolve_summary.infeasible) {
      result.status = BipStatus::kInfeasible;
      record_bip();
      return result;
    }
    relax = &reduced;
  }

  uint64_t pruned = 0;
  uint64_t infeasible = 0;
  uint64_t incumbents = 0;
  double incumbent = LpProblem::kInfinity;
  if (options.warm_start != nullptr &&
      options.warm_start->size() ==
          static_cast<size_t>(problem.num_variables())) {
    incumbent = 0.0;
    for (int v = 0; v < problem.num_variables(); ++v) {
      incumbent +=
          problem.cost(v) * (*options.warm_start)[static_cast<size_t>(v)];
    }
    result.x = *options.warm_start;
    result.objective = incumbent;
    result.status = BipStatus::kOptimal;  // provisional
    if (logging) bstats.warm_started = true;
  }

  auto record_node = [&, bip_id](int node_id, int depth, const char* action,
                                 double parent_bound, const LpResult* lp,
                                 int branch_var, double incumbent_now) {
    BbNodeEvent event;
    event.bip_id = bip_id;
    event.node_id = node_id;
    event.depth = depth;
    event.action = action;
    event.parent_bound = parent_bound;
    if (lp != nullptr) {
      event.has_lp = true;
      event.lp_objective = lp->objective;
      event.lp_iterations = lp->iterations;
    }
    event.branch_var = branch_var;
    event.incumbent = incumbent_now;
    slog.RecordNode(std::move(event));
  };

  std::vector<Node> stack;
  stack.push_back(Node{{}, -LpProblem::kInfinity, nullptr});
  bool root_pending = true;

  auto prune_threshold = [&]() {
    const double rel = std::isfinite(incumbent)
                           ? options.relative_gap * std::abs(incumbent)
                           : 0.0;
    return incumbent - std::max(options.absolute_gap, rel);
  };

  // Per-node hot starts ride on the factorized engine's dual-simplex
  // repair of the parent basis; the tableau engines would reject the
  // (primal-infeasible under the branch fixing) basis anyway, so they
  // stay cold and keep their baseline trajectories untouched.
  const bool child_hot_starts = options.lp_engine == LpEngine::kFactorized;

  // One selected-and-evaluated node. `solved` distinguishes the batch
  // evaluation path from the lazy serial path below.
  struct Evaluated {
    Node node;
    LpResult lp;
    LpBasis final_basis;
    bool solved = false;
  };
  std::vector<Evaluated> batch;

  Stopwatch watch;
  while (!stack.empty() && result.nodes_explored < options.max_nodes) {
    if (options.time_limit_seconds > 0.0 &&
        watch.ElapsedSeconds() > options.time_limit_seconds) {
      break;
    }

    // --- Select a batch: pop until kNodeBatch survivors of the
    // parent-bound prune. The prune is decided against the incumbent as of
    // selection (no LPs run during selection), so the surviving set — and
    // therefore which relaxations get solved — is a pure function of the
    // search state, independent of pool presence and thread count. ---
    batch.clear();
    while (static_cast<int>(batch.size()) < kNodeBatch && !stack.empty()) {
      Node node = std::move(stack.back());
      stack.pop_back();
      if (node.parent_bound >= prune_threshold()) {
        ++pruned;
        if (logging) {
          ++bstats.pruned_parent;
          record_node(/*node_id=*/-1, static_cast<int>(node.fixings.size()),
                      "pruned_parent", node.parent_bound,
                      /*lp=*/nullptr, /*branch_var=*/-1, incumbent);
        }
        continue;
      }
      batch.emplace_back();
      batch.back().node = std::move(node);
    }

    double lp_deadline = 0.0;
    if (options.time_limit_seconds > 0.0) {
      lp_deadline = std::max(
          1.0, options.time_limit_seconds - watch.ElapsedSeconds());
    }

    // The first node reaching here with no fixings is the root (it is
    // seeded that way and never pruned: its parent bound is -inf). Only
    // the root uses the caller's starting basis and exports into
    // capture_root_basis; children hot-start from their parent instead.
    auto solve_node = [&](Evaluated& ev, bool is_root) {
      LpBasis* fb = (child_hot_starts || is_root) ? &ev.final_basis : nullptr;
      const LpBasis* sb = is_root ? options.root_basis : ev.node.start.get();
      ev.lp = relax->Solve(ev.node.fixings, /*max_iterations=*/0, lp_deadline,
                           options.lp_engine, sb, fb);
      ev.solved = true;
    };

    // --- Evaluate the whole batch, concurrently when a pool is available
    // (each relaxation is a pure function of its node). Skipped while
    // logging: LP telemetry carries per-node context and record order, so
    // logging runs solve lazily below, on the serial spine. ---
    if (!logging && batch.size() > 1) {
      util::ParallelFor(options.threads, batch.size(), [&](size_t i) {
        // Deadline granularity: once the budget expires, start no further
        // LPs — the serial pass below returns unsolved nodes to the stack.
        // In-flight relaxations still finish, so an expiry overshoots by at
        // most one LP solve per worker.
        if (options.time_limit_seconds > 0.0 &&
            watch.ElapsedSeconds() > options.time_limit_seconds) {
          return;
        }
        solve_node(batch[i],
                   /*is_root=*/root_pending && batch[i].node.fixings.empty());
      });
    }

    // --- Process in pop order (always serial): prune, bound, incumbent,
    // branch. Byte-for-byte the serial algorithm — the evaluation above
    // only precomputed LP results it consumes. ---
    for (size_t bi = 0; bi < batch.size(); ++bi) {
      if (result.nodes_explored >= options.max_nodes ||
          (options.time_limit_seconds > 0.0 &&
           watch.ElapsedSeconds() > options.time_limit_seconds)) {
        // Return the unprocessed tail to the stack (reverse order restores
        // the pop order) so the node-limit status sees them pending.
        for (size_t r = batch.size(); r-- > bi;) {
          stack.push_back(std::move(batch[r].node));
        }
        break;
      }
      Evaluated& ev = batch[bi];
      Node& node = ev.node;
      const int depth = static_cast<int>(node.fixings.size());
      if (node.parent_bound >= prune_threshold()) {
        // An incumbent found earlier in this batch retroactively prunes
        // the node; its speculative LP result (if any) is discarded
        // uncounted, matching the lazy path exactly.
        ++pruned;
        if (logging) {
          ++bstats.pruned_parent;
          record_node(/*node_id=*/-1, depth, "pruned_parent",
                      node.parent_bound, /*lp=*/nullptr, /*branch_var=*/-1,
                      incumbent);
        }
        continue;
      }

      const int node_id = result.nodes_explored;
      ++result.nodes_explored;
      if (logging) bstats.max_depth = std::max(bstats.max_depth, depth);
      const bool is_root = root_pending && node.fixings.empty();
      if (is_root) root_pending = false;
      if (!ev.solved) {
        if (logging) SolveLog::SetContext(bip_id, node_id);
        solve_node(ev, is_root);
      }
      LpResult& lp = ev.lp;
      if (is_root) {
        if (logging) bstats.root_hot_started = lp.hot_started;
        if (options.capture_root_basis != nullptr) {
          *options.capture_root_basis = ev.final_basis;
        }
      }
      result.lp_iterations += lp.iterations;
      if (lp.status == LpStatus::kInfeasible) {
        ++infeasible;
        if (logging) {
          ++bstats.infeasible;
          record_node(node_id, depth, "infeasible", node.parent_bound, &lp,
                      /*branch_var=*/-1, incumbent);
        }
        continue;
      }
      if (lp.status != LpStatus::kOptimal) {
        // Unbounded or iteration-limited relaxations abort the search; the
        // schema optimizer's models are always bounded, so this is
        // defensive.
        if (logging) {
          record_node(node_id, depth, "abandoned", node.parent_bound, &lp,
                      /*branch_var=*/-1, incumbent);
        }
        continue;
      }
      if (lp.objective >= prune_threshold()) {
        ++pruned;
        if (logging) {
          ++bstats.pruned_bound;
          record_node(node_id, depth, "pruned_bound", node.parent_bound, &lp,
                      /*branch_var=*/-1, incumbent);
        }
        continue;
      }

      const int branch_var = PickBranchVariable(problem, lp.x, binary_vars,
                                                options.integrality_tolerance);
      if (branch_var == -1) {
        // Integral: new incumbent. Snap binaries exactly, then recompute
        // the objective from the snapped point in index order — this makes
        // the reported optimum independent of the simplex engine's
        // floating-point path (the engines agree bitwise on instances
        // whose costs and solution values are exactly representable).
        result.x = std::move(lp.x);
        for (int var : binary_vars) {
          result.x[static_cast<size_t>(var)] =
              std::round(result.x[static_cast<size_t>(var)]);
        }
        incumbent = 0.0;
        for (int v = 0; v < problem.num_variables(); ++v) {
          incumbent += problem.cost(v) * result.x[static_cast<size_t>(v)];
        }
        result.objective = incumbent;
        result.status = BipStatus::kOptimal;  // provisional; confirmed below
        ++incumbents;
        if (logging) {
          ++bstats.incumbents;
          record_node(node_id, depth, "incumbent", node.parent_bound, &lp,
                      /*branch_var=*/-1, incumbent);
        }
        continue;
      }

      // Depth-first within the batch: push the branch suggested by the
      // fractional value last so it pops first. Both children share the
      // parent's optimal basis as their hot start.
      if (logging) {
        record_node(node_id, depth, "branched", node.parent_bound, &lp,
                    branch_var, incumbent);
      }
      const double frac = lp.x[static_cast<size_t>(branch_var)];
      const double preferred = frac >= 0.5 ? 1.0 : 0.0;
      std::shared_ptr<const LpBasis> child_start;
      if (child_hot_starts && !ev.final_basis.empty()) {
        child_start = std::make_shared<LpBasis>(std::move(ev.final_basis));
      }
      Node other = node;
      other.parent_bound = lp.objective;
      other.start = child_start;
      other.fixings.emplace_back(branch_var, 1.0 - preferred, 1.0 - preferred);
      stack.push_back(std::move(other));
      Node first = std::move(node);
      first.parent_bound = lp.objective;
      first.start = std::move(child_start);
      first.fixings.emplace_back(branch_var, preferred, preferred);
      stack.push_back(std::move(first));
    }
  }

  if (!stack.empty()) {
    // Node limit reached with work remaining. The global lower bound at
    // this point: every open subtree costs at least its parent's LP
    // bound, and every pruned subtree at least the (final, smallest)
    // prune threshold.
    result.status = std::isfinite(incumbent) ? BipStatus::kNodeLimit
                                             : BipStatus::kNoSolution;
    double open_min = prune_threshold();
    for (const Node& node : stack) {
      open_min = std::min(open_min, node.parent_bound);
    }
    result.best_bound = open_min;
  } else if (!std::isfinite(incumbent)) {
    result.status = BipStatus::kInfeasible;
    result.best_bound = incumbent;
  } else {
    result.status = BipStatus::kOptimal;
    result.best_bound = result.objective;
  }
  if (cert != nullptr) {
    cert->status = BipStatusName(result.status);
    cert->objective = result.objective;
    cert->x = result.x;
  }
  static obs::Counter& nodes_counter =
      obs::MetricsRegistry::Global().GetCounter("solver.bb_nodes");
  static obs::Counter& pruned_counter =
      obs::MetricsRegistry::Global().GetCounter("solver.bb_pruned");
  static obs::Counter& infeasible_counter =
      obs::MetricsRegistry::Global().GetCounter("solver.bb_infeasible");
  static obs::Counter& incumbent_counter =
      obs::MetricsRegistry::Global().GetCounter("solver.bb_incumbents");
  nodes_counter.Add(static_cast<uint64_t>(result.nodes_explored));
  pruned_counter.Add(pruned);
  infeasible_counter.Add(infeasible);
  incumbent_counter.Add(incumbents);
  record_bip();
  return result;
}

}  // namespace nose
