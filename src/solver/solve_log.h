#ifndef NOSE_SOLVER_SOLVE_LOG_H_
#define NOSE_SOLVER_SOLVE_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nose {

/// Per-LP-solve telemetry captured by both simplex engines. Everything here
/// is a pure function of the instance and the (deterministic) pivot path —
/// except `solve_ms`, which is wall clock and therefore excluded from
/// SolveLog::Fingerprint().
struct LpSolveStats {
  uint64_t id = 0;      ///< 1-based record id, assigned by SolveLog::RecordLp
  uint64_t bip_id = 0;  ///< enclosing B&B solve, 0 = standalone LP
  int node_id = -1;     ///< explored-node ordinal within bip_id, -1 = none

  std::string engine;  ///< "factorized" | "sparse" | "dense"
  std::string status;  ///< LpStatusName of the result
  int rows = 0;        ///< constraint rows of the original problem
  int cols = 0;        ///< structural variables
  int tableau_cols = 0;  ///< structural + slack + artificial columns
  uint64_t nonzeros = 0;  ///< structural nonzeros of the original problem

  int iterations = 0;         ///< total simplex iterations (both phases)
  int phase1_iterations = 0;  ///< iterations spent driving artificials out
  int devex_resets = 0;       ///< devex reference-weight reinitializations
  int bland_iterations = 0;   ///< iterations priced under Bland's rule
  int bound_flips = 0;        ///< nonbasic bound-to-bound moves (no pivot)
  int max_degenerate_streak = 0;  ///< longest run of zero-step pivots

  /// Stored tableau entries (CSR nonzeros, or the full width for densified
  /// rows) before phase 1 and at termination — the fill-accumulation
  /// signal behind the cover_lp800 slowdown. The factorized engine reports
  /// its stored factor entries (LU + eta file) here instead, so the same
  /// field compares fill across engines.
  uint64_t fill_start = 0;
  uint64_t fill_end = 0;
  int dense_rows = 0;  ///< rows that upgraded from CSR to dense storage

  /// Basis-maintenance telemetry — factorized engine only (zero elsewhere).
  /// `refactorizations` counts basis factorizations from scratch (the
  /// initial crash/hot-load one included), `ft_updates` the product-form
  /// updates appended between them, and `factor_fill` the L+U nonzeros of
  /// the final base factorization.
  int refactorizations = 0;
  int ft_updates = 0;
  uint64_t factor_fill = 0;

  /// max/min over rows of the pre-equilibration row magnitude — a cheap
  /// conditioning estimate (1 = already equilibrated).
  double equilibration_cond = 1.0;

  bool hot_start_attempted = false;
  bool hot_started = false;

  double solve_ms = 0.0;  ///< wall clock; excluded from Fingerprint()

  /// (cumulative iteration, stored entries — tableau or factor) sampled
  /// every kFillSampleStride iterations; sparse and factorized engines.
  std::vector<std::pair<int, uint64_t>> fill_curve;

  /// Stored entries as a fraction of the full tableau (rows·tableau_cols).
  double FillRatio(uint64_t stored) const;
};

/// One branch-and-bound search event. `action` is one of:
///   "pruned_parent" — popped with parent bound above the incumbent
///                     threshold; no LP was solved (node_id is -1)
///   "infeasible"    — node LP infeasible
///   "abandoned"     — node LP unbounded or iteration/deadline-limited
///   "pruned_bound"  — node LP optimal but bound above the threshold
///   "incumbent"     — integral LP optimum improved the incumbent
///   "branched"      — fractional optimum; two children pushed
struct BbNodeEvent {
  uint64_t bip_id = 0;
  int node_id = -1;  ///< explored-node ordinal; -1 when pruned before its LP
  int depth = 0;     ///< fixings along the branch
  std::string action;
  double parent_bound = 0.0;  ///< -inf at the root
  double lp_objective = 0.0;  ///< valid for pruned_bound/incumbent/branched
  bool has_lp = false;        ///< whether lp_objective/lp_iterations are set
  int lp_iterations = 0;
  int branch_var = -1;        ///< valid for "branched"
  double incumbent = 0.0;     ///< incumbent after the event; +inf if none
};

/// End-of-search summary for one SolveBip call.
struct BipSolveStats {
  uint64_t id = 0;  ///< 1-based B&B solve id, assigned by SolveLog
  std::string status;  ///< BipStatusName of the result
  double objective = 0.0;
  int vars = 0;
  int rows = 0;
  uint64_t nonzeros = 0;
  int binaries = 0;
  bool presolved = false;
  int presolve_rows_dropped = 0;
  int presolve_bounds_tightened = 0;
  int nodes_explored = 0;
  int max_depth = 0;
  uint64_t lp_iterations = 0;
  uint64_t pruned_bound = 0;
  uint64_t pruned_parent = 0;
  uint64_t infeasible = 0;
  uint64_t incumbents = 0;
  bool warm_started = false;  ///< incumbent seeded from a warm-start point
  bool root_hot_start_attempted = false;
  bool root_hot_started = false;
  double solve_ms = 0.0;  ///< wall clock; excluded from Fingerprint()
};

/// Process-wide solver-introspection sink: bounded ring buffers of
/// LpSolveStats / BbNodeEvent / BipSolveStats records, exportable as JSONL
/// (`nose ... --solve-log FILE`, read back by `nose explain`).
///
/// Off by default. When disabled, the instrumentation cost is one relaxed
/// atomic load per LP/BIP solve — nothing per simplex iteration — so the
/// engines run at full speed (pinned by the overhead smoke test). When
/// enabled, records append under a mutex; capacity overflow drops the
/// OLDEST records (ring semantics) and counts the drops.
///
/// Determinism: LP and B&B solves run on the serial spine of the advisor
/// pipeline (only formulation assembly is parallel), so record order — and
/// therefore the JSONL export — is identical at any thread count.
/// Fingerprint() additionally strips wall-clock fields and global ids and
/// sorts the canonical lines, so it is invariant even if callers ever
/// overlap independent solves from multiple threads.
class SolveLog {
 public:
  static constexpr size_t kDefaultLpCapacity = 16384;
  static constexpr size_t kDefaultNodeCapacity = 65536;
  static constexpr size_t kDefaultBipCapacity = 4096;
  /// Sparse fill is sampled every this many simplex iterations.
  static constexpr int kFillSampleStride = 64;

  static SolveLog& Global();

  /// Starts recording (clears previous records and id counters).
  void Enable(size_t max_lp_records = kDefaultLpCapacity,
              size_t max_node_events = kDefaultNodeCapacity,
              size_t max_bip_records = kDefaultBipCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Drops all records and resets id counters; recording state unchanged.
  void Clear();

  /// Appends a record (assigning stats.id) — call only when enabled().
  void RecordLp(LpSolveStats stats);
  void RecordNode(BbNodeEvent event);
  void RecordBip(BipSolveStats stats);

  /// Allocates the next B&B solve id and sets the calling thread's context
  /// to (id, node -1).
  uint64_t BeginBip();

  /// Thread-local B&B context: LP solves stamp their records with it so
  /// `nose explain` can attribute LP time to tree nodes.
  static void SetContext(uint64_t bip_id, int node_id);
  static void ClearContext();
  static uint64_t ContextBipId();
  static int ContextNodeId();

  size_t lp_record_count() const;
  size_t node_event_count() const;
  size_t bip_record_count() const;
  uint64_t dropped_lp_records() const;
  uint64_t dropped_node_events() const;
  uint64_t dropped_bip_records() const;

  /// Snapshot copies (records stay in the log).
  std::vector<LpSolveStats> LpRecords() const;
  std::vector<BbNodeEvent> NodeEvents() const;
  std::vector<BipSolveStats> BipRecords() const;

  /// JSONL export: one meta line, then one line per record in record order
  /// ("type" ∈ meta|lp|node|bip).
  std::string ToJsonl() const;
  bool WriteJsonl(const std::string& path, std::string* error = nullptr) const;

  /// Aggregate summary as one JSON object (embedded in --report-json).
  std::string SummaryJson() const;

  /// Canonical timing-free digest: every record rendered without wall-clock
  /// fields or global ids, lines sorted. Bitwise-identical across runs at
  /// any thread count (the telemetry determinism contract).
  std::string Fingerprint() const;

 private:
  SolveLog() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  size_t max_lp_ = kDefaultLpCapacity;
  size_t max_nodes_ = kDefaultNodeCapacity;
  size_t max_bips_ = kDefaultBipCapacity;
  uint64_t next_lp_id_ = 0;
  uint64_t next_bip_id_ = 0;
  uint64_t dropped_lp_ = 0;
  uint64_t dropped_nodes_ = 0;
  uint64_t dropped_bips_ = 0;
  std::deque<LpSolveStats> lp_records_;
  std::deque<BbNodeEvent> node_events_;
  std::deque<BipSolveStats> bip_records_;
};

/// A parsed solve log (the output of ReadSolveLog / ParseSolveLogJsonl).
struct SolveLogData {
  std::vector<LpSolveStats> lp;
  std::vector<BbNodeEvent> nodes;
  std::vector<BipSolveStats> bips;
  uint64_t dropped_lp = 0;
  uint64_t dropped_nodes = 0;
  uint64_t dropped_bips = 0;
};

/// Parses a JSONL solve log. Unknown line types and unknown fields are
/// skipped (forward compatibility); a malformed line fails the parse.
bool ParseSolveLogJsonl(const std::string& text, SolveLogData* out,
                        std::string* error = nullptr);
bool ReadSolveLog(const std::string& path, SolveLogData* out,
                  std::string* error = nullptr);

/// Renders the human-readable diagnosis `nose explain <solve-log>` prints:
/// B&B tree summary, prune-reason breakdown, hot-start hits, the top LP
/// time sinks, per-phase/per-context time attribution, and the fill-growth
/// curve of the slowest solve. Deterministic given the log contents.
std::string ExplainSolveLog(const SolveLogData& data);

}  // namespace nose

#endif  // NOSE_SOLVER_SOLVE_LOG_H_
