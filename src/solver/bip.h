#ifndef NOSE_SOLVER_BIP_H_
#define NOSE_SOLVER_BIP_H_

#include <vector>

#include "solver/lp.h"

namespace nose {

namespace util {
class ThreadPool;
}  // namespace util

struct SolveCertificate;

/// Termination status of a branch-and-bound solve.
enum class BipStatus {
  kOptimal,
  kInfeasible,
  kNodeLimit,   ///< best incumbent returned, optimality not proven
  kNoSolution,  ///< node limit hit before any incumbent was found
};

const char* BipStatusName(BipStatus status);

struct BipOptions {
  double integrality_tolerance = 1e-6;
  /// Prune nodes whose LP bound is within this of the incumbent. For
  /// problems with provably integral objectives (e.g. minimizing a count),
  /// set this just below 1 to prune aggressively.
  double absolute_gap = 1e-9;
  /// Additionally prune within `relative_gap * |incumbent|`: the returned
  /// solution is optimal to within this factor (Gurobi-style MIP gap).
  /// Schema-advisor instances contain many near-duplicate candidates whose
  /// equal-cost plateaus are pointless to enumerate exactly.
  double relative_gap = 0.01;
  int max_nodes = 1000000;
  /// Wall-clock budget in seconds; 0 disables. On expiry the best
  /// incumbent is returned with kNodeLimit status.
  double time_limit_seconds = 0.0;
  /// Optional feasible starting point (e.g. the solution of a previous
  /// phase); used as the initial incumbent so pruning bites immediately.
  /// Feasibility is the caller's responsibility.
  const std::vector<double>* warm_start = nullptr;
  /// Simplex core used for every node relaxation.
  LpEngine lp_engine = LpEngine::kFactorized;
  /// Optional worker pool for tree-parallel node evaluation. Nodes are
  /// selected in fixed-size batches (a deterministic rule that does not
  /// depend on the pool), their relaxations solved concurrently, and the
  /// results processed in batch order — so the explored trajectory, the
  /// recommendation, and every statistic in BipResult are identical at any
  /// thread count (and with no pool at all); only the wall clock differs.
  /// Ignored while the solve log is enabled: telemetry record order is part
  /// of the determinism contract, so logging runs solve nodes serially.
  util::ThreadPool* threads = nullptr;
  /// Apply exact presolve reductions (singleton rows → bounds, duplicate
  /// inequality dedup) once, before the search; every node then solves the
  /// reduced relaxation. The reductions are cost-independent, so captured
  /// root bases stay valid across re-solves with different objectives.
  bool presolve = true;
  /// Optional starting basis for the ROOT relaxation, captured from a
  /// previous solve of the same (presolved) instance — the incremental
  /// advisor's hot start. Sparse and factorized engines; an unusable basis
  /// falls back to a cold start. (Child nodes additionally hot-start from
  /// their parent's optimal basis under the factorized engine, which
  /// repairs the bound-change infeasibility with dual simplex pivots.)
  const LpBasis* root_basis = nullptr;
  /// If set, receives the root relaxation's optimal basis (cleared when the
  /// root solve is not cleanly optimal).
  LpBasis* capture_root_basis = nullptr;
  /// If set, receives a machine-checkable record of this solve (see
  /// solver/certificate.h): a copy of the instance, the final solution and
  /// objective, and dual multipliers harvested from one extra cold solve of
  /// the ORIGINAL (un-presolved) root relaxation so the checker can certify
  /// a lower bound without trusting presolve. Costs one LP solve.
  SolveCertificate* capture_certificate = nullptr;
};

struct BipResult {
  BipStatus status = BipStatus::kNoSolution;
  double objective = 0.0;
  std::vector<double> x;  ///< integral solution (if any)
  /// Valid global lower bound on the optimum at termination. Equals
  /// `objective` when optimality was proven; on an early stop (node/time
  /// limit) it is min(open-node parent bounds, final prune threshold) —
  /// every pruned subtree had an LP bound at or above the final threshold,
  /// and the threshold only decreases as incumbents improve. -inf when the
  /// root was never solved. Computed at exit; tracking it does not perturb
  /// the search trajectory.
  double best_bound = 0.0;
  int nodes_explored = 0;
  int lp_iterations = 0;
};

/// Exact 0/1 integer programming by LP-based branch and bound: depth-first
/// search in fixed-size node batches (evaluated in parallel when
/// BipOptions::threads is set, with identical results either way),
/// most-fractional branching, bound pruning against the incumbent.
/// `binary_vars` lists the variables required to be integral; they must
/// have bounds within [0, 1] in `problem`. Remaining variables stay
/// continuous. This is the solver NoSE's schema optimizer uses in place of
/// Gurobi (paper §V).
BipResult SolveBip(const LpProblem& problem, const std::vector<int>& binary_vars,
                   const BipOptions& options = BipOptions());

}  // namespace nose

#endif  // NOSE_SOLVER_BIP_H_
