#include "solver/solve_log.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace nose {

namespace {

/// Exact round-trip double rendering for records; non-finite values (−inf
/// parent bounds at the root, +inf "no incumbent yet") become JSON null.
void AppendNum(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  *out += std::to_string(v);
}

void AppendBool(std::string* out, bool v) { *out += v ? "true" : "false"; }

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

/// Renders one LP record. `canonical` drops wall-clock fields and global
/// ids for Fingerprint().
std::string RenderLp(const LpSolveStats& r, bool canonical) {
  std::string out = "{\"type\":\"lp\"";
  if (!canonical) {
    out += ",\"id\":";
    AppendU64(&out, r.id);
    out += ",\"bip\":";
    AppendU64(&out, r.bip_id);
  }
  out += ",\"node\":" + std::to_string(r.node_id);
  out += ",\"engine\":";
  AppendJsonString(&out, r.engine);
  out += ",\"status\":";
  AppendJsonString(&out, r.status);
  out += ",\"rows\":" + std::to_string(r.rows);
  out += ",\"cols\":" + std::to_string(r.cols);
  out += ",\"tableau_cols\":" + std::to_string(r.tableau_cols);
  out += ",\"nnz\":";
  AppendU64(&out, r.nonzeros);
  out += ",\"iters\":" + std::to_string(r.iterations);
  out += ",\"phase1_iters\":" + std::to_string(r.phase1_iterations);
  out += ",\"devex_resets\":" + std::to_string(r.devex_resets);
  out += ",\"bland_iters\":" + std::to_string(r.bland_iterations);
  out += ",\"bound_flips\":" + std::to_string(r.bound_flips);
  out += ",\"max_degen_streak\":" + std::to_string(r.max_degenerate_streak);
  out += ",\"fill_start\":";
  AppendU64(&out, r.fill_start);
  out += ",\"fill_end\":";
  AppendU64(&out, r.fill_end);
  out += ",\"dense_rows\":" + std::to_string(r.dense_rows);
  out += ",\"refactorizations\":" + std::to_string(r.refactorizations);
  out += ",\"ft_updates\":" + std::to_string(r.ft_updates);
  out += ",\"factor_fill\":";
  AppendU64(&out, r.factor_fill);
  out += ",\"equil_cond\":";
  AppendNum(&out, r.equilibration_cond);
  out += ",\"hot_attempted\":";
  AppendBool(&out, r.hot_start_attempted);
  out += ",\"hot_started\":";
  AppendBool(&out, r.hot_started);
  if (!canonical) {
    out += ",\"ms\":";
    AppendNum(&out, r.solve_ms);
  }
  out += ",\"fill_curve\":[";
  for (size_t i = 0; i < r.fill_curve.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "[" + std::to_string(r.fill_curve[i].first) + ",";
    AppendU64(&out, r.fill_curve[i].second);
    out += "]";
  }
  out += "]}";
  return out;
}

std::string RenderNode(const BbNodeEvent& e, bool canonical) {
  std::string out = "{\"type\":\"node\"";
  if (!canonical) {
    out += ",\"bip\":";
    AppendU64(&out, e.bip_id);
  }
  out += ",\"node\":" + std::to_string(e.node_id);
  out += ",\"depth\":" + std::to_string(e.depth);
  out += ",\"action\":";
  AppendJsonString(&out, e.action);
  out += ",\"parent_bound\":";
  AppendNum(&out, e.parent_bound);
  out += ",\"lp_objective\":";
  if (e.has_lp) {
    AppendNum(&out, e.lp_objective);
  } else {
    out += "null";
  }
  out += ",\"lp_iters\":" + std::to_string(e.lp_iterations);
  out += ",\"branch_var\":" + std::to_string(e.branch_var);
  out += ",\"incumbent\":";
  AppendNum(&out, e.incumbent);
  out += "}";
  return out;
}

std::string RenderBip(const BipSolveStats& r, bool canonical) {
  std::string out = "{\"type\":\"bip\"";
  if (!canonical) {
    out += ",\"id\":";
    AppendU64(&out, r.id);
  }
  out += ",\"status\":";
  AppendJsonString(&out, r.status);
  out += ",\"objective\":";
  AppendNum(&out, r.objective);
  out += ",\"vars\":" + std::to_string(r.vars);
  out += ",\"rows\":" + std::to_string(r.rows);
  out += ",\"nnz\":";
  AppendU64(&out, r.nonzeros);
  out += ",\"binaries\":" + std::to_string(r.binaries);
  out += ",\"presolved\":";
  AppendBool(&out, r.presolved);
  out += ",\"presolve_rows_dropped\":" + std::to_string(r.presolve_rows_dropped);
  out += ",\"presolve_bounds_tightened\":" +
         std::to_string(r.presolve_bounds_tightened);
  out += ",\"nodes\":" + std::to_string(r.nodes_explored);
  out += ",\"max_depth\":" + std::to_string(r.max_depth);
  out += ",\"lp_iters\":";
  AppendU64(&out, r.lp_iterations);
  out += ",\"pruned_bound\":";
  AppendU64(&out, r.pruned_bound);
  out += ",\"pruned_parent\":";
  AppendU64(&out, r.pruned_parent);
  out += ",\"infeasible\":";
  AppendU64(&out, r.infeasible);
  out += ",\"incumbents\":";
  AppendU64(&out, r.incumbents);
  out += ",\"warm_started\":";
  AppendBool(&out, r.warm_started);
  out += ",\"root_hot_attempted\":";
  AppendBool(&out, r.root_hot_start_attempted);
  out += ",\"root_hot_started\":";
  AppendBool(&out, r.root_hot_started);
  if (!canonical) {
    out += ",\"ms\":";
    AppendNum(&out, r.solve_ms);
  }
  out += "}";
  return out;
}

/// Thread-local B&B context; LP solves read it to tag their records.
struct BipContext {
  uint64_t bip_id = 0;
  int node_id = -1;
};
thread_local BipContext tls_context;

}  // namespace

double LpSolveStats::FillRatio(uint64_t stored) const {
  const double denom =
      static_cast<double>(rows) * static_cast<double>(tableau_cols);
  return denom > 0.0 ? static_cast<double>(stored) / denom : 0.0;
}

SolveLog& SolveLog::Global() {
  static SolveLog* log = new SolveLog();  // never destroyed
  return *log;
}

void SolveLog::Enable(size_t max_lp_records, size_t max_node_events,
                      size_t max_bip_records) {
  std::lock_guard<std::mutex> lock(mu_);
  max_lp_ = std::max<size_t>(1, max_lp_records);
  max_nodes_ = std::max<size_t>(1, max_node_events);
  max_bips_ = std::max<size_t>(1, max_bip_records);
  lp_records_.clear();
  node_events_.clear();
  bip_records_.clear();
  next_lp_id_ = 0;
  next_bip_id_ = 0;
  dropped_lp_ = 0;
  dropped_nodes_ = 0;
  dropped_bips_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void SolveLog::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void SolveLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lp_records_.clear();
  node_events_.clear();
  bip_records_.clear();
  next_lp_id_ = 0;
  next_bip_id_ = 0;
  dropped_lp_ = 0;
  dropped_nodes_ = 0;
  dropped_bips_ = 0;
}

void SolveLog::RecordLp(LpSolveStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats.id = ++next_lp_id_;
  if (lp_records_.size() >= max_lp_) {
    lp_records_.pop_front();
    ++dropped_lp_;
  }
  lp_records_.push_back(std::move(stats));
}

void SolveLog::RecordNode(BbNodeEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node_events_.size() >= max_nodes_) {
    node_events_.pop_front();
    ++dropped_nodes_;
  }
  node_events_.push_back(std::move(event));
}

void SolveLog::RecordBip(BipSolveStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bip_records_.size() >= max_bips_) {
    bip_records_.pop_front();
    ++dropped_bips_;
  }
  bip_records_.push_back(std::move(stats));
}

uint64_t SolveLog::BeginBip() {
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = ++next_bip_id_;
  }
  SetContext(id, -1);
  return id;
}

void SolveLog::SetContext(uint64_t bip_id, int node_id) {
  tls_context.bip_id = bip_id;
  tls_context.node_id = node_id;
}

void SolveLog::ClearContext() {
  tls_context.bip_id = 0;
  tls_context.node_id = -1;
}

uint64_t SolveLog::ContextBipId() { return tls_context.bip_id; }
int SolveLog::ContextNodeId() { return tls_context.node_id; }

size_t SolveLog::lp_record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lp_records_.size();
}

size_t SolveLog::node_event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return node_events_.size();
}

size_t SolveLog::bip_record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bip_records_.size();
}

uint64_t SolveLog::dropped_lp_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_lp_;
}

uint64_t SolveLog::dropped_node_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_nodes_;
}

uint64_t SolveLog::dropped_bip_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_bips_;
}

std::vector<LpSolveStats> SolveLog::LpRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<LpSolveStats>(lp_records_.begin(), lp_records_.end());
}

std::vector<BbNodeEvent> SolveLog::NodeEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<BbNodeEvent>(node_events_.begin(), node_events_.end());
}

std::vector<BipSolveStats> SolveLog::BipRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<BipSolveStats>(bip_records_.begin(), bip_records_.end());
}

std::string SolveLog::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"type\":\"meta\",\"version\":1,\"lp_records\":";
  AppendU64(&out, lp_records_.size());
  out += ",\"node_events\":";
  AppendU64(&out, node_events_.size());
  out += ",\"bip_records\":";
  AppendU64(&out, bip_records_.size());
  out += ",\"dropped_lp\":";
  AppendU64(&out, dropped_lp_);
  out += ",\"dropped_nodes\":";
  AppendU64(&out, dropped_nodes_);
  out += ",\"dropped_bips\":";
  AppendU64(&out, dropped_bips_);
  out += "}\n";
  for (const LpSolveStats& r : lp_records_) {
    out += RenderLp(r, /*canonical=*/false);
    out.push_back('\n');
  }
  for (const BbNodeEvent& e : node_events_) {
    out += RenderNode(e, /*canonical=*/false);
    out.push_back('\n');
  }
  for (const BipSolveStats& r : bip_records_) {
    out += RenderBip(r, /*canonical=*/false);
    out.push_back('\n');
  }
  return out;
}

bool SolveLog::WriteJsonl(const std::string& path, std::string* error) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << ToJsonl();
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

std::string SolveLog::SummaryJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t lp_iters = 0;
  uint64_t hot_attempts = 0;
  uint64_t hot_hits = 0;
  double lp_ms = 0.0;
  double max_fill = 0.0;
  for (const LpSolveStats& r : lp_records_) {
    lp_iters += static_cast<uint64_t>(r.iterations);
    if (r.hot_start_attempted) ++hot_attempts;
    if (r.hot_started) ++hot_hits;
    lp_ms += r.solve_ms;
    max_fill = std::max(max_fill, r.FillRatio(r.fill_end));
  }
  uint64_t bb_nodes = 0;
  uint64_t bb_incumbents = 0;
  uint64_t bb_pruned = 0;
  double bip_ms = 0.0;
  for (const BipSolveStats& r : bip_records_) {
    bb_nodes += static_cast<uint64_t>(r.nodes_explored);
    bb_incumbents += r.incumbents;
    bb_pruned += r.pruned_bound + r.pruned_parent;
    bip_ms += r.solve_ms;
  }
  std::string out = "{\"enabled\":";
  AppendBool(&out, enabled_.load(std::memory_order_relaxed));
  out += ",\"lp_solves\":";
  AppendU64(&out, lp_records_.size());
  out += ",\"lp_iterations\":";
  AppendU64(&out, lp_iters);
  out += ",\"lp_ms\":";
  AppendNum(&out, lp_ms);
  out += ",\"max_fill_ratio\":";
  AppendNum(&out, max_fill);
  out += ",\"hot_start_attempts\":";
  AppendU64(&out, hot_attempts);
  out += ",\"hot_start_hits\":";
  AppendU64(&out, hot_hits);
  out += ",\"bip_solves\":";
  AppendU64(&out, bip_records_.size());
  out += ",\"bb_nodes\":";
  AppendU64(&out, bb_nodes);
  out += ",\"bb_incumbents\":";
  AppendU64(&out, bb_incumbents);
  out += ",\"bb_pruned\":";
  AppendU64(&out, bb_pruned);
  out += ",\"bip_ms\":";
  AppendNum(&out, bip_ms);
  out += ",\"node_events\":";
  AppendU64(&out, node_events_.size());
  out += ",\"dropped_lp\":";
  AppendU64(&out, dropped_lp_);
  out += ",\"dropped_nodes\":";
  AppendU64(&out, dropped_nodes_);
  out += "}";
  return out;
}

std::string SolveLog::Fingerprint() const {
  std::vector<std::string> lines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lines.reserve(lp_records_.size() + node_events_.size() +
                  bip_records_.size());
    for (const LpSolveStats& r : lp_records_) {
      lines.push_back(RenderLp(r, /*canonical=*/true));
    }
    for (const BbNodeEvent& e : node_events_) {
      lines.push_back(RenderNode(e, /*canonical=*/true));
    }
    for (const BipSolveStats& r : bip_records_) {
      lines.push_back(RenderBip(r, /*canonical=*/true));
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

// ===========================================================================
// JSONL reader (`nose explain`).
// ===========================================================================

namespace {

/// Minimal recursive-descent JSON value parser — just enough for the solve
/// log's own output (objects, arrays, strings, numbers, bools, null). The
/// repo deliberately carries no JSON library; this stays private to the
/// solve-log reader.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double Num(const char* key, double def) const {
    const JsonValue* v = Find(key);
    return (v != nullptr && v->kind == Kind::kNumber) ? v->number : def;
  }
  int Int(const char* key, int def) const {
    return static_cast<int>(Num(key, def));
  }
  uint64_t U64(const char* key, uint64_t def) const {
    const JsonValue* v = Find(key);
    return (v != nullptr && v->kind == Kind::kNumber)
               ? static_cast<uint64_t>(v->number)
               : def;
  }
  bool Bool(const char* key, bool def) const {
    const JsonValue* v = Find(key);
    return (v != nullptr && v->kind == Kind::kBool) ? v->boolean : def;
  }
  std::string Str(const char* key) const {
    const JsonValue* v = Find(key);
    return (v != nullptr && v->kind == Kind::kString) ? v->str : std::string();
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            const unsigned long code =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            // The writer only escapes control bytes, so ASCII suffices.
            out->push_back(static_cast<char>(code & 0x7f));
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') return false;
        ++pos_;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->fields.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->items.push_back(std::move(value));
        SkipWs();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    // Number.
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<size_t>(end - start);
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

double NumOrInf(const JsonValue& obj, const char* key, double inf_value) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return inf_value;
  return v->number;
}

}  // namespace

bool ParseSolveLogJsonl(const std::string& text, SolveLogData* out,
                        std::string* error) {
  *out = SolveLogData();
  std::istringstream stream(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty() ||
        line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    JsonValue value;
    JsonParser parser(line);
    if (!parser.Parse(&value) || value.kind != JsonValue::Kind::kObject) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": malformed JSON";
      }
      return false;
    }
    const std::string type = value.Str("type");
    if (type == "meta") {
      out->dropped_lp = value.U64("dropped_lp", 0);
      out->dropped_nodes = value.U64("dropped_nodes", 0);
      out->dropped_bips = value.U64("dropped_bips", 0);
    } else if (type == "lp") {
      LpSolveStats r;
      r.id = value.U64("id", 0);
      r.bip_id = value.U64("bip", 0);
      r.node_id = value.Int("node", -1);
      r.engine = value.Str("engine");
      r.status = value.Str("status");
      r.rows = value.Int("rows", 0);
      r.cols = value.Int("cols", 0);
      r.tableau_cols = value.Int("tableau_cols", 0);
      r.nonzeros = value.U64("nnz", 0);
      r.iterations = value.Int("iters", 0);
      r.phase1_iterations = value.Int("phase1_iters", 0);
      r.devex_resets = value.Int("devex_resets", 0);
      r.bland_iterations = value.Int("bland_iters", 0);
      r.bound_flips = value.Int("bound_flips", 0);
      r.max_degenerate_streak = value.Int("max_degen_streak", 0);
      r.fill_start = value.U64("fill_start", 0);
      r.fill_end = value.U64("fill_end", 0);
      r.dense_rows = value.Int("dense_rows", 0);
      r.refactorizations = value.Int("refactorizations", 0);
      r.ft_updates = value.Int("ft_updates", 0);
      r.factor_fill = value.U64("factor_fill", 0);
      r.equilibration_cond = value.Num("equil_cond", 1.0);
      r.hot_start_attempted = value.Bool("hot_attempted", false);
      r.hot_started = value.Bool("hot_started", false);
      r.solve_ms = value.Num("ms", 0.0);
      const JsonValue* curve = value.Find("fill_curve");
      if (curve != nullptr && curve->kind == JsonValue::Kind::kArray) {
        for (const JsonValue& sample : curve->items) {
          if (sample.kind == JsonValue::Kind::kArray &&
              sample.items.size() == 2) {
            r.fill_curve.emplace_back(
                static_cast<int>(sample.items[0].number),
                static_cast<uint64_t>(sample.items[1].number));
          }
        }
      }
      out->lp.push_back(std::move(r));
    } else if (type == "node") {
      BbNodeEvent e;
      e.bip_id = value.U64("bip", 0);
      e.node_id = value.Int("node", -1);
      e.depth = value.Int("depth", 0);
      e.action = value.Str("action");
      e.parent_bound =
          NumOrInf(value, "parent_bound",
                   -std::numeric_limits<double>::infinity());
      const JsonValue* obj = value.Find("lp_objective");
      e.has_lp = obj != nullptr && obj->kind == JsonValue::Kind::kNumber;
      if (e.has_lp) e.lp_objective = obj->number;
      e.lp_iterations = value.Int("lp_iters", 0);
      e.branch_var = value.Int("branch_var", -1);
      e.incumbent = NumOrInf(value, "incumbent",
                             std::numeric_limits<double>::infinity());
      out->nodes.push_back(std::move(e));
    } else if (type == "bip") {
      BipSolveStats r;
      r.id = value.U64("id", 0);
      r.status = value.Str("status");
      r.objective = value.Num("objective", 0.0);
      r.vars = value.Int("vars", 0);
      r.rows = value.Int("rows", 0);
      r.nonzeros = value.U64("nnz", 0);
      r.binaries = value.Int("binaries", 0);
      r.presolved = value.Bool("presolved", false);
      r.presolve_rows_dropped = value.Int("presolve_rows_dropped", 0);
      r.presolve_bounds_tightened = value.Int("presolve_bounds_tightened", 0);
      r.nodes_explored = value.Int("nodes", 0);
      r.max_depth = value.Int("max_depth", 0);
      r.lp_iterations = value.U64("lp_iters", 0);
      r.pruned_bound = value.U64("pruned_bound", 0);
      r.pruned_parent = value.U64("pruned_parent", 0);
      r.infeasible = value.U64("infeasible", 0);
      r.incumbents = value.U64("incumbents", 0);
      r.warm_started = value.Bool("warm_started", false);
      r.root_hot_start_attempted = value.Bool("root_hot_attempted", false);
      r.root_hot_started = value.Bool("root_hot_started", false);
      r.solve_ms = value.Num("ms", 0.0);
      out->bips.push_back(std::move(r));
    }
    // Unknown types are skipped: newer writers may add record kinds.
  }
  return true;
}

bool ReadSolveLog(const std::string& path, SolveLogData* out,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseSolveLogJsonl(buffer.str(), out, error);
}

// ===========================================================================
// `nose explain` renderer.
// ===========================================================================

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

std::string LpContext(const LpSolveStats& r) {
  if (r.bip_id == 0) return "standalone";
  std::string out = "b&b " + std::to_string(r.bip_id);
  if (r.node_id >= 0) {
    out += " node " + std::to_string(r.node_id);
  } else {
    out += " root";
  }
  return out;
}

}  // namespace

std::string ExplainSolveLog(const SolveLogData& data) {
  std::string out;
  if (data.lp.empty() && data.nodes.empty() && data.bips.empty()) {
    return "solve log is empty\n";
  }

  uint64_t total_iters = 0;
  uint64_t phase1_iters = 0;
  uint64_t bland_iters = 0;
  uint64_t bound_flips = 0;
  uint64_t hot_attempts = 0;
  uint64_t hot_hits = 0;
  uint64_t refactorizations = 0;
  uint64_t ft_updates = 0;
  uint64_t peak_factor_fill = 0;
  double total_ms = 0.0;
  double root_ms = 0.0;
  double tree_ms = 0.0;
  double standalone_ms = 0.0;
  for (const LpSolveStats& r : data.lp) {
    total_iters += static_cast<uint64_t>(r.iterations);
    phase1_iters += static_cast<uint64_t>(r.phase1_iterations);
    bland_iters += static_cast<uint64_t>(r.bland_iterations);
    bound_flips += static_cast<uint64_t>(r.bound_flips);
    refactorizations += static_cast<uint64_t>(r.refactorizations);
    ft_updates += static_cast<uint64_t>(r.ft_updates);
    peak_factor_fill = std::max(peak_factor_fill, r.factor_fill);
    if (r.hot_start_attempted) ++hot_attempts;
    if (r.hot_started) ++hot_hits;
    total_ms += r.solve_ms;
    if (r.bip_id == 0) {
      standalone_ms += r.solve_ms;
    } else if (r.node_id <= 0) {
      root_ms += r.solve_ms;
    } else {
      tree_ms += r.solve_ms;
    }
  }

  Appendf(&out, "== solve log ==\n");
  Appendf(&out,
          "lp solves: %zu (%llu dropped)   b&b solves: %zu   node events: "
          "%zu (%llu dropped)\n",
          data.lp.size(), static_cast<unsigned long long>(data.dropped_lp),
          data.bips.size(), data.nodes.size(),
          static_cast<unsigned long long>(data.dropped_nodes));
  Appendf(&out,
          "total lp time %.2f ms over %llu simplex iterations; hot starts "
          "%llu/%llu loaded\n",
          total_ms, static_cast<unsigned long long>(total_iters),
          static_cast<unsigned long long>(hot_hits),
          static_cast<unsigned long long>(hot_attempts));

  // --- B&B tree summaries. ---
  for (const BipSolveStats& b : data.bips) {
    Appendf(&out, "\n== b&b solve %llu [%s] ==\n",
            static_cast<unsigned long long>(b.id), b.status.c_str());
    Appendf(&out, "objective %.10g — %d vars (%d binary), %d rows, %llu nnz",
            b.objective, b.vars, b.binaries, b.rows,
            static_cast<unsigned long long>(b.nonzeros));
    if (b.presolved) {
      Appendf(&out, " (presolve: %d rows dropped, %d bounds tightened)",
              b.presolve_rows_dropped, b.presolve_bounds_tightened);
    }
    Appendf(&out, "\n");
    Appendf(&out,
            "nodes: %d explored, max depth %d, %llu incumbents; pruned: "
            "%llu by bound + %llu by parent bound, %llu infeasible\n",
            b.nodes_explored, b.max_depth,
            static_cast<unsigned long long>(b.incumbents),
            static_cast<unsigned long long>(b.pruned_bound),
            static_cast<unsigned long long>(b.pruned_parent),
            static_cast<unsigned long long>(b.infeasible));
    const char* root_hot = !b.root_hot_start_attempted ? "not attempted"
                           : b.root_hot_started        ? "hit"
                                                       : "miss";
    Appendf(&out,
            "root hot-start: %s; warm-start incumbent: %s; %llu lp "
            "iterations, %.2f ms\n",
            root_hot, b.warm_started ? "yes" : "no",
            static_cast<unsigned long long>(b.lp_iterations), b.solve_ms);
    // Incumbent trajectory (first improvements tell how fast the search
    // closes in; an early near-final incumbent means pruning did the rest).
    int shown = 0;
    for (const BbNodeEvent& e : data.nodes) {
      if (e.bip_id != b.id || e.action != "incumbent") continue;
      if (shown == 8) {
        Appendf(&out, "  ... (%llu incumbent updates total)\n",
                static_cast<unsigned long long>(b.incumbents));
        break;
      }
      Appendf(&out, "  incumbent %.10g at node %d (depth %d)\n", e.incumbent,
              e.node_id, e.depth);
      ++shown;
    }
  }

  // --- Top time sinks. ---
  std::vector<const LpSolveStats*> by_ms;
  by_ms.reserve(data.lp.size());
  for (const LpSolveStats& r : data.lp) by_ms.push_back(&r);
  std::stable_sort(by_ms.begin(), by_ms.end(),
                   [](const LpSolveStats* a, const LpSolveStats* b) {
                     if (a->solve_ms != b->solve_ms) {
                       return a->solve_ms > b->solve_ms;
                     }
                     return a->id < b->id;
                   });
  if (!by_ms.empty()) {
    Appendf(&out, "\n== top lp time sinks ==\n");
    Appendf(&out,
            "   #        ms    iters   ph1  rows x cols      fill      "
            "engine  context\n");
    const size_t top = std::min<size_t>(by_ms.size(), 10);
    for (size_t i = 0; i < top; ++i) {
      const LpSolveStats& r = *by_ms[i];
      Appendf(&out,
              " %3zu %9.2f %8d %5d %5dx%-6d %4.1f%%->%-5.1f%% %7s  %s\n",
              i + 1, r.solve_ms, r.iterations, r.phase1_iterations, r.rows,
              r.tableau_cols, 100.0 * r.FillRatio(r.fill_start),
              100.0 * r.FillRatio(r.fill_end), r.engine.c_str(),
              LpContext(r).c_str());
    }
  }

  // --- Time attribution. ---
  Appendf(&out, "\n== time attribution ==\n");
  const double iter_denom =
      total_iters > 0 ? static_cast<double>(total_iters) : 1.0;
  Appendf(&out,
          "by phase (iteration-weighted): phase 1 %llu iters (%.1f%%), "
          "phase 2 %llu iters (%.1f%%)\n",
          static_cast<unsigned long long>(phase1_iters),
          100.0 * static_cast<double>(phase1_iters) / iter_denom,
          static_cast<unsigned long long>(total_iters - phase1_iters),
          100.0 * static_cast<double>(total_iters - phase1_iters) /
              iter_denom);
  const double ms_denom = total_ms > 0.0 ? total_ms : 1.0;
  Appendf(&out,
          "by context: root lp %.2f ms (%.1f%%), tree nodes %.2f ms "
          "(%.1f%%), standalone %.2f ms (%.1f%%)\n",
          root_ms, 100.0 * root_ms / ms_denom, tree_ms,
          100.0 * tree_ms / ms_denom, standalone_ms,
          100.0 * standalone_ms / ms_denom);
  Appendf(&out,
          "pricing: %llu iterations under Bland's rule (%.1f%%), %llu bound "
          "flips\n",
          static_cast<unsigned long long>(bland_iters),
          100.0 * static_cast<double>(bland_iters) / iter_denom,
          static_cast<unsigned long long>(bound_flips));
  // Only the factorized engine reports basis telemetry; logs recorded
  // before it existed (or with the tableau engines) render unchanged.
  if (refactorizations + ft_updates > 0) {
    Appendf(&out,
            "basis: %llu refactorizations, %llu forrest-tomlin updates "
            "(%.1f updates per factorization); peak factor fill %llu "
            "entries\n",
            static_cast<unsigned long long>(refactorizations),
            static_cast<unsigned long long>(ft_updates),
            static_cast<double>(ft_updates) /
                static_cast<double>(
                    refactorizations > 0 ? refactorizations : 1),
            static_cast<unsigned long long>(peak_factor_fill));
  }

  // --- Fill growth of the slowest solve with a curve. ---
  const LpSolveStats* focus = nullptr;
  for (const LpSolveStats* r : by_ms) {
    if (!r->fill_curve.empty()) {
      focus = r;
      break;
    }
  }
  if (focus != nullptr) {
    Appendf(&out, "\n== fill growth (lp %llu: %d rows x %d tableau cols, %s, "
                  "%.2f ms) ==\n",
            static_cast<unsigned long long>(focus->id), focus->rows,
            focus->tableau_cols, focus->engine.c_str(), focus->solve_ms);
    uint64_t peak = 1;
    for (const auto& [iter, stored] : focus->fill_curve) {
      (void)iter;
      peak = std::max(peak, stored);
    }
    // At most 16 evenly spaced samples, always keeping the last.
    const size_t n = focus->fill_curve.size();
    const size_t stride = (n + 15) / 16;
    for (size_t i = 0; i < n; ++i) {
      if (i % stride != 0 && i + 1 != n) continue;
      const auto& [iter, stored] = focus->fill_curve[i];
      const int bar = static_cast<int>(
          40.0 * static_cast<double>(stored) / static_cast<double>(peak));
      Appendf(&out, "  iter %7d  stored %9llu  fill %5.1f%%  |", iter,
              static_cast<unsigned long long>(stored),
              100.0 * focus->FillRatio(stored));
      for (int k = 0; k < bar; ++k) out.push_back('#');
      out += "\n";
    }
    const double start_fill = focus->FillRatio(focus->fill_start);
    const double end_fill = focus->FillRatio(focus->fill_end);
    Appendf(&out,
            "fill grew %.1fx over the solve: %.1f%% -> %.1f%% of the "
            "tableau; %d of %d rows densified; longest degenerate streak "
            "%d, equilibration cond %.3g\n",
            start_fill > 0.0 ? end_fill / start_fill : 0.0,
            100.0 * start_fill, 100.0 * end_fill, focus->dense_rows,
            focus->rows, focus->max_degenerate_streak,
            focus->equilibration_cond);
  }
  return out;
}

}  // namespace nose
