#ifndef NOSE_SOLVER_PRESOLVE_H_
#define NOSE_SOLVER_PRESOLVE_H_

#include <vector>

#include "solver/lp.h"

namespace nose {

/// What PresolveForBip did to an instance.
struct PresolveSummary {
  int singleton_rows_dropped = 0;
  int duplicate_rows_dropped = 0;
  int scaled_duplicate_rows_dropped = 0;
  int dominated_rows_dropped = 0;   ///< proportional rows, weaker rhs
  int redundant_rows_dropped = 0;   ///< implied by the variable box
  int bounds_tightened = 0;         ///< from singleton rows
  int activity_bounds_tightened = 0;  ///< from multi-term row activity
  bool infeasible = false;  ///< a tightening emptied some variable's range
};

/// Reductions applied before branch-and-bound:
///
///  1. Singleton rows (one structural nonzero) become variable bounds and
///     are dropped. Bounds derived for `binary_vars` are rounded to the
///     nearest integer in range — branch fixings REPLACE bounds, so a
///     fractional tightening on a branchable variable could otherwise
///     silently re-violate the dropped row.
///  2. Exact-duplicate inequality rows (same sense, indices, coefficients,
///     and rhs — common across per-query subtrees sharing a candidate) keep
///     only their first occurrence.
///  3. Inequality rows whose coefficient vectors are POSITIVE scalings of
///     an earlier survivor (b = s·a, s > 0 — e.g. the same cover row
///     assembled under different statement weights, or a horizon row
///     repeated with a duration scale) keep only the TIGHTEST half-space:
///     an exact-rhs match (β·a_0 == α·b_0) is a scaled duplicate, a
///     mismatched rhs makes the weaker row dominated. Every comparison is
///     exact cross-multiplication (b_k·a_0 == a_k·b_0 for every k, with
///     matching leading signs), never a tolerance, so dropping the weaker
///     row cannot perturb the relaxation.
///  4. Binary bounds are strengthened from row activity: in Σ a_j x_j ≤ rhs
///     each term is at least its box minimum, so the residual bounds each
///     branchable binary; the derived bound is rounded to an integer, which
///     both absorbs floating-point noise and often fixes the variable
///     outright. Inequality rows the tightened box already implies (maximum
///     activity ≤ rhs for ≤ rows, minimum ≥ rhs for ≥) are then dropped as
///     redundant.
///
/// The reduced problem has the SAME variables at the same indices (warm
/// starts and branch decisions carry over unchanged) and the surviving rows
/// in their original order. All reductions are exact: the feasible set
/// restricted to integral `binary_vars` is unchanged, so the optimal BIP
/// objective is identical. They also remain valid at every branch-and-bound
/// node, because branch fixings only SHRINK the box the activity arguments
/// quantified over. The reductions depend only on the constraint
/// rows, never on the objective — re-advising with new costs yields the
/// same reduced geometry, which keeps captured root bases replayable.
LpProblem PresolveForBip(const LpProblem& problem,
                         const std::vector<int>& binary_vars,
                         PresolveSummary* summary);

}  // namespace nose

#endif  // NOSE_SOLVER_PRESOLVE_H_
