#ifndef NOSE_SOLVER_PRESOLVE_H_
#define NOSE_SOLVER_PRESOLVE_H_

#include <vector>

#include "solver/lp.h"

namespace nose {

/// What PresolveForBip did to an instance.
struct PresolveSummary {
  int singleton_rows_dropped = 0;
  int duplicate_rows_dropped = 0;
  int scaled_duplicate_rows_dropped = 0;
  int bounds_tightened = 0;
  bool infeasible = false;  ///< a tightening emptied some variable's range
};

/// Reductions applied before branch-and-bound:
///
///  1. Singleton rows (one structural nonzero) become variable bounds and
///     are dropped. Bounds derived for `binary_vars` are rounded to the
///     nearest integer in range — branch fixings REPLACE bounds, so a
///     fractional tightening on a branchable variable could otherwise
///     silently re-violate the dropped row.
///  2. Exact-duplicate inequality rows (same sense, indices, coefficients,
///     and rhs — common across per-query subtrees sharing a candidate) keep
///     only their first occurrence.
///  3. Inequality rows equal to an earlier survivor up to a POSITIVE scale
///     (b = s·a, β = s·α, s > 0 — e.g. the same cover row assembled under
///     different statement weights, or a horizon row repeated with a
///     duration scale) are dropped. The test is exact cross-multiplication
///     (b_k·a_0 == a_k·b_0 for every k, and β·a_0 == α·b_0, with matching
///     leading signs), never a tolerance, so the two rows bound the
///     identical half-space and dropping one cannot perturb the relaxation.
///
/// The reduced problem has the SAME variables at the same indices (warm
/// starts and branch decisions carry over unchanged) and the surviving rows
/// in their original order. Both reductions are exact: the feasible set
/// restricted to integral `binary_vars` is unchanged, so the optimal BIP
/// objective is identical. The reductions depend only on the constraint
/// rows, never on the objective — re-advising with new costs yields the
/// same reduced geometry, which keeps captured root bases replayable.
LpProblem PresolveForBip(const LpProblem& problem,
                         const std::vector<int>& binary_vars,
                         PresolveSummary* summary);

}  // namespace nose

#endif  // NOSE_SOLVER_PRESOLVE_H_
