#include "solver/presolve.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"

namespace nose {

namespace {

constexpr double kBoundTol = 1e-9;

/// Byte-exact row fingerprint: sense, rhs, and the CSR arrays. Two rows
/// collide only when every coefficient matches bitwise, so dropping the
/// duplicate cannot perturb the LP relaxation at all.
std::string RowKey(const LpRow& row) {
  std::string key;
  key.reserve(1 + sizeof(double) +
              row.indices.size() * (sizeof(int) + sizeof(double)));
  key.push_back(static_cast<char>(row.type));
  key.append(reinterpret_cast<const char*>(&row.rhs), sizeof(double));
  key.append(reinterpret_cast<const char*>(row.indices.data()),
             row.indices.size() * sizeof(int));
  key.append(reinterpret_cast<const char*>(row.values.data()),
             row.values.size() * sizeof(double));
  return key;
}

/// Structure-only fingerprint (sense + index pattern): rows that are
/// positive scalings of each other necessarily collide here, so the scaled
/// dedup only cross-multiplies within these buckets.
std::string RowShapeKey(const LpRow& row) {
  std::string key;
  key.reserve(1 + row.indices.size() * sizeof(int));
  key.push_back(static_cast<char>(row.type));
  key.append(reinterpret_cast<const char*>(row.indices.data()),
             row.indices.size() * sizeof(int));
  return key;
}

/// True when row `b` equals `s · a` (coefficients AND rhs) for some s > 0.
/// Both rows are known to share sense and index pattern. The comparison is
/// exact cross-multiplication — no tolerance — so a positive verdict means
/// the two half-spaces are literally the same set.
bool IsPositiveScaling(const LpRow& a, const LpRow& b) {
  if (a.values.empty()) return false;
  const double a0 = a.values[0];
  const double b0 = b.values[0];
  if (a0 == 0.0 || b0 == 0.0) return false;
  if ((a0 > 0.0) != (b0 > 0.0)) return false;  // s must be positive
  for (size_t k = 1; k < a.values.size(); ++k) {
    if (b.values[k] * a0 != a.values[k] * b0) return false;
  }
  return b.rhs * a0 == a.rhs * b0;
}

}  // namespace

LpProblem PresolveForBip(const LpProblem& problem,
                         const std::vector<int>& binary_vars,
                         PresolveSummary* summary) {
  const int n = problem.num_variables();
  const int m = problem.num_rows();
  std::vector<double> lb(static_cast<size_t>(n));
  std::vector<double> ub(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    lb[static_cast<size_t>(v)] = problem.lower_bound(v);
    ub[static_cast<size_t>(v)] = problem.upper_bound(v);
  }

  // Pass 1: turn singleton rows into bounds.
  std::vector<char> drop(static_cast<size_t>(m), 0);
  for (int i = 0; i < m; ++i) {
    const LpRow& row = problem.row(i);
    if (row.indices.size() > 1) continue;
    if (row.indices.empty() ||
        (row.indices.size() == 1 && row.values[0] == 0.0)) {
      // 0 (≤|≥|=) rhs: either trivially true or the whole problem is empty.
      const bool satisfied = row.type == RowType::kLe   ? 0.0 <= row.rhs
                             : row.type == RowType::kGe ? 0.0 >= row.rhs
                                                        : row.rhs == 0.0;
      if (satisfied) {
        drop[static_cast<size_t>(i)] = 1;
        ++summary->singleton_rows_dropped;
      } else {
        summary->infeasible = true;
      }
      continue;
    }
    const int v = row.indices[0];
    const double a = row.values[0];
    const double b = row.rhs / a;
    // a·x ≤ rhs bounds x above when a > 0, below when a < 0 (and the
    // mirror for ≥); equality pins both sides.
    const bool bounds_above =
        row.type == RowType::kEq || ((row.type == RowType::kLe) == (a > 0.0));
    const bool bounds_below =
        row.type == RowType::kEq || ((row.type == RowType::kGe) == (a > 0.0));
    if (bounds_above && b < ub[static_cast<size_t>(v)]) {
      ub[static_cast<size_t>(v)] = b;
      ++summary->bounds_tightened;
    }
    if (bounds_below && b > lb[static_cast<size_t>(v)]) {
      lb[static_cast<size_t>(v)] = b;
      ++summary->bounds_tightened;
    }
    drop[static_cast<size_t>(i)] = 1;
    ++summary->singleton_rows_dropped;
  }

  // Integrality: tightened bounds on branchable variables must stay
  // integral (branch fixings replace bounds wholesale).
  for (int v : binary_vars) {
    double& l = lb[static_cast<size_t>(v)];
    double& u = ub[static_cast<size_t>(v)];
    const double lr = std::ceil(l - kBoundTol);
    const double ur = std::floor(u + kBoundTol);
    l = lr;
    u = ur;
  }
  for (int v = 0; v < n; ++v) {
    double& l = lb[static_cast<size_t>(v)];
    double& u = ub[static_cast<size_t>(v)];
    if (l > u + kBoundTol) summary->infeasible = true;
    // Collapse any inversion so the reduced problem stays constructible;
    // callers must check `infeasible` before solving it.
    if (l > u) l = u;
  }

  // Pass 2: drop exact-duplicate inequality rows among the survivors.
  std::unordered_set<std::string> seen;
  for (int i = 0; i < m; ++i) {
    if (drop[static_cast<size_t>(i)]) continue;
    const LpRow& row = problem.row(i);
    if (row.type == RowType::kEq) continue;
    if (!seen.insert(RowKey(row)).second) {
      drop[static_cast<size_t>(i)] = 1;
      ++summary->duplicate_rows_dropped;
    }
  }

  // Pass 3: drop inequality rows that are positive scalings of an earlier
  // survivor. Bucketing by (sense, index pattern) keeps the pairwise
  // cross-multiplication within candidate groups.
  std::unordered_map<std::string, std::vector<int>> shape_groups;
  for (int i = 0; i < m; ++i) {
    if (drop[static_cast<size_t>(i)]) continue;
    const LpRow& row = problem.row(i);
    if (row.type == RowType::kEq || row.indices.size() < 2) continue;
    std::vector<int>& group = shape_groups[RowShapeKey(row)];
    bool scaled = false;
    for (int rep : group) {
      if (IsPositiveScaling(problem.row(rep), row)) {
        scaled = true;
        break;
      }
    }
    if (scaled) {
      drop[static_cast<size_t>(i)] = 1;
      ++summary->scaled_duplicate_rows_dropped;
    } else {
      group.push_back(i);
    }
  }

  LpProblem reduced;
  for (int v = 0; v < n; ++v) {
    reduced.AddVariable(lb[static_cast<size_t>(v)], ub[static_cast<size_t>(v)],
                        problem.cost(v));
  }
  for (int i = 0; i < m; ++i) {
    if (drop[static_cast<size_t>(i)]) continue;
    const LpRow& row = problem.row(i);
    std::vector<std::pair<int, double>> coeffs;
    coeffs.reserve(row.indices.size());
    for (size_t k = 0; k < row.indices.size(); ++k) {
      coeffs.emplace_back(row.indices[k], row.values[k]);
    }
    reduced.AddRow(row.type, row.rhs, std::move(coeffs));
  }

  static obs::Counter& singleton = obs::MetricsRegistry::Global().GetCounter(
      "solver.presolve_singleton_rows");
  static obs::Counter& duplicate = obs::MetricsRegistry::Global().GetCounter(
      "solver.presolve_duplicate_rows");
  static obs::Counter& scaled = obs::MetricsRegistry::Global().GetCounter(
      "solver.presolve_scaled_duplicate_rows");
  singleton.Add(static_cast<uint64_t>(summary->singleton_rows_dropped));
  duplicate.Add(static_cast<uint64_t>(summary->duplicate_rows_dropped));
  scaled.Add(static_cast<uint64_t>(summary->scaled_duplicate_rows_dropped));
  return reduced;
}

}  // namespace nose
