#include "solver/presolve.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"

namespace nose {

namespace {

constexpr double kBoundTol = 1e-9;

/// Byte-exact row fingerprint: sense, rhs, and the CSR arrays. Two rows
/// collide only when every coefficient matches bitwise, so dropping the
/// duplicate cannot perturb the LP relaxation at all.
std::string RowKey(const LpRow& row) {
  std::string key;
  key.reserve(1 + sizeof(double) +
              row.indices.size() * (sizeof(int) + sizeof(double)));
  key.push_back(static_cast<char>(row.type));
  key.append(reinterpret_cast<const char*>(&row.rhs), sizeof(double));
  key.append(reinterpret_cast<const char*>(row.indices.data()),
             row.indices.size() * sizeof(int));
  key.append(reinterpret_cast<const char*>(row.values.data()),
             row.values.size() * sizeof(double));
  return key;
}

/// Structure-only fingerprint (sense + index pattern): rows that are
/// positive scalings of each other necessarily collide here, so the scaled
/// dedup only cross-multiplies within these buckets.
std::string RowShapeKey(const LpRow& row) {
  std::string key;
  key.reserve(1 + row.indices.size() * sizeof(int));
  key.push_back(static_cast<char>(row.type));
  key.append(reinterpret_cast<const char*>(row.indices.data()),
             row.indices.size() * sizeof(int));
  return key;
}

/// True when row `b`'s coefficient vector equals `s · a`'s for some s > 0
/// (rhs not considered). Both rows are known to share sense and index
/// pattern. The comparison is exact cross-multiplication — no tolerance —
/// so a positive verdict means the two rows bound parallel half-spaces.
bool CoefficientsPositivelyProportional(const LpRow& a, const LpRow& b) {
  if (a.values.empty()) return false;
  const double a0 = a.values[0];
  const double b0 = b.values[0];
  if (a0 == 0.0 || b0 == 0.0) return false;
  if ((a0 > 0.0) != (b0 > 0.0)) return false;  // s must be positive
  for (size_t k = 1; k < a.values.size(); ++k) {
    if (b.values[k] * a0 != a.values[k] * b0) return false;
  }
  return true;
}

/// For two rows with positively proportional coefficients (b = s·a, s > 0)
/// and the same inequality sense, decides which half-space is contained in
/// the other. Returns +1 when `b` is strictly tighter, -1 when `a` is
/// strictly tighter or they are equal. Exact cross-multiplication again:
/// b is a·x ≤ β/s, tighter than a·x ≤ α iff β/s < α (mirrored for ≥).
int TighterRow(const LpRow& a, const LpRow& b) {
  const double a0 = a.values[0];
  const double b0 = b.values[0];
  // Compare β/s against α with s = b0/a0 > 0: multiply through by b0·a0
  // (> 0 — both share sign), giving β·a0·|..| vs α·b0·|..|; equivalently
  // compare β·a0 to α·b0, flipping when b0 < 0.
  const double lhs = b.rhs * a0;
  const double rhs = a.rhs * b0;
  const bool b_smaller = b0 > 0.0 ? lhs < rhs : lhs > rhs;
  const bool b_tighter = a.type == RowType::kLe ? b_smaller
                                                : !b_smaller && lhs != rhs;
  return b_tighter ? 1 : -1;
}

}  // namespace

LpProblem PresolveForBip(const LpProblem& problem,
                         const std::vector<int>& binary_vars,
                         PresolveSummary* summary) {
  const int n = problem.num_variables();
  const int m = problem.num_rows();
  std::vector<double> lb(static_cast<size_t>(n));
  std::vector<double> ub(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    lb[static_cast<size_t>(v)] = problem.lower_bound(v);
    ub[static_cast<size_t>(v)] = problem.upper_bound(v);
  }

  // Pass 1: turn singleton rows into bounds.
  std::vector<char> drop(static_cast<size_t>(m), 0);
  for (int i = 0; i < m; ++i) {
    const LpRow& row = problem.row(i);
    if (row.indices.size() > 1) continue;
    if (row.indices.empty() ||
        (row.indices.size() == 1 && row.values[0] == 0.0)) {
      // 0 (≤|≥|=) rhs: either trivially true or the whole problem is empty.
      const bool satisfied = row.type == RowType::kLe   ? 0.0 <= row.rhs
                             : row.type == RowType::kGe ? 0.0 >= row.rhs
                                                        : row.rhs == 0.0;
      if (satisfied) {
        drop[static_cast<size_t>(i)] = 1;
        ++summary->singleton_rows_dropped;
      } else {
        summary->infeasible = true;
      }
      continue;
    }
    const int v = row.indices[0];
    const double a = row.values[0];
    const double b = row.rhs / a;
    // a·x ≤ rhs bounds x above when a > 0, below when a < 0 (and the
    // mirror for ≥); equality pins both sides.
    const bool bounds_above =
        row.type == RowType::kEq || ((row.type == RowType::kLe) == (a > 0.0));
    const bool bounds_below =
        row.type == RowType::kEq || ((row.type == RowType::kGe) == (a > 0.0));
    if (bounds_above && b < ub[static_cast<size_t>(v)]) {
      ub[static_cast<size_t>(v)] = b;
      ++summary->bounds_tightened;
    }
    if (bounds_below && b > lb[static_cast<size_t>(v)]) {
      lb[static_cast<size_t>(v)] = b;
      ++summary->bounds_tightened;
    }
    drop[static_cast<size_t>(i)] = 1;
    ++summary->singleton_rows_dropped;
  }

  // Pass 1b: strengthen binary bounds from row activity. For a row
  // Σ a_j x_j ≤ rhs, each term is bounded below by its box minimum, so
  // a_k x_k ≤ rhs − Σ_{j≠k} min(a_j x_j); dividing by a_k tightens x_k's
  // bound. Restricted to branchable binaries: the integrality rounding
  // below absorbs any floating-point noise in the derived bound, so the
  // set of feasible INTEGRAL points is provably unchanged (≥ rows are the
  // mirror image; = rows yield both directions). Derived bounds stay valid
  // at every branch-and-bound node because branching only shrinks the box
  // the activity minima came from.
  std::vector<char> is_binary(static_cast<size_t>(n), 0);
  for (int v : binary_vars) is_binary[static_cast<size_t>(v)] = 1;
  for (int i = 0; i < m; ++i) {
    if (drop[static_cast<size_t>(i)]) continue;
    const LpRow& row = problem.row(i);
    if (row.indices.size() < 2) continue;
    // Express the row as one or two ≤ constraints: (sign, bound) pairs with
    // sign·(a·x) ≤ sign·rhs.
    const bool has_le = row.type != RowType::kGe;
    const bool has_ge = row.type != RowType::kLe;
    for (int pass = 0; pass < 2; ++pass) {
      const double sign = pass == 0 ? 1.0 : -1.0;
      if ((pass == 0 && !has_le) || (pass == 1 && !has_ge)) continue;
      double total_min = 0.0;
      bool unbounded = false;
      for (size_t k = 0; k < row.indices.size(); ++k) {
        const size_t v = static_cast<size_t>(row.indices[k]);
        const double a = sign * row.values[k];
        const double contrib = a > 0.0 ? a * lb[v] : a * ub[v];
        if (std::isinf(contrib)) {
          unbounded = true;
          break;
        }
        total_min += contrib;
      }
      if (unbounded) continue;
      for (size_t k = 0; k < row.indices.size(); ++k) {
        const size_t v = static_cast<size_t>(row.indices[k]);
        if (!is_binary[v]) continue;
        const double a = sign * row.values[k];
        if (a == 0.0) continue;
        const double own_min = a > 0.0 ? a * lb[v] : a * ub[v];
        const double residual = sign * row.rhs - (total_min - own_min);
        const double implied = residual / a;
        if (a > 0.0) {
          if (implied < ub[v] - kBoundTol) {
            ub[v] = implied;
            ++summary->activity_bounds_tightened;
          }
        } else if (implied > lb[v] + kBoundTol) {
          lb[v] = implied;
          ++summary->activity_bounds_tightened;
        }
      }
    }
  }

  // Integrality: tightened bounds on branchable variables must stay
  // integral (branch fixings replace bounds wholesale).
  for (int v : binary_vars) {
    double& l = lb[static_cast<size_t>(v)];
    double& u = ub[static_cast<size_t>(v)];
    const double lr = std::ceil(l - kBoundTol);
    const double ur = std::floor(u + kBoundTol);
    l = lr;
    u = ur;
  }
  for (int v = 0; v < n; ++v) {
    double& l = lb[static_cast<size_t>(v)];
    double& u = ub[static_cast<size_t>(v)];
    if (l > u + kBoundTol) summary->infeasible = true;
    // Collapse any inversion so the reduced problem stays constructible;
    // callers must check `infeasible` before solving it.
    if (l > u) l = u;
  }

  // Pass 2: drop exact-duplicate inequality rows among the survivors.
  std::unordered_set<std::string> seen;
  for (int i = 0; i < m; ++i) {
    if (drop[static_cast<size_t>(i)]) continue;
    const LpRow& row = problem.row(i);
    if (row.type == RowType::kEq) continue;
    if (!seen.insert(RowKey(row)).second) {
      drop[static_cast<size_t>(i)] = 1;
      ++summary->duplicate_rows_dropped;
    }
  }

  // Pass 3: among inequality rows whose coefficient vectors are positive
  // scalings of each other, only the tightest half-space matters — the rest
  // are dominated. Bucketing by (sense, index pattern) keeps the pairwise
  // cross-multiplication within candidate groups. Exact-rhs scalings count
  // as scaled duplicates; mismatched-rhs scalings as dominated rows.
  std::unordered_map<std::string, std::vector<int>> shape_groups;
  for (int i = 0; i < m; ++i) {
    if (drop[static_cast<size_t>(i)]) continue;
    const LpRow& row = problem.row(i);
    if (row.type == RowType::kEq || row.indices.size() < 2) continue;
    std::vector<int>& group = shape_groups[RowShapeKey(row)];
    bool matched = false;
    for (int& rep : group) {
      const LpRow& rep_row = problem.row(rep);
      if (!CoefficientsPositivelyProportional(rep_row, row)) continue;
      const double a0 = rep_row.values[0];
      const double b0 = row.values[0];
      if (row.rhs * a0 == rep_row.rhs * b0) {
        // Same half-space exactly: classic scaled duplicate.
        drop[static_cast<size_t>(i)] = 1;
        ++summary->scaled_duplicate_rows_dropped;
      } else if (TighterRow(rep_row, row) > 0) {
        // Row i is strictly tighter: the earlier representative is
        // dominated — drop it and let i represent the bucket.
        drop[static_cast<size_t>(rep)] = 1;
        ++summary->dominated_rows_dropped;
        rep = i;
      } else {
        drop[static_cast<size_t>(i)] = 1;
        ++summary->dominated_rows_dropped;
      }
      matched = true;
      break;
    }
    if (!matched) group.push_back(i);
  }

  // Pass 4: drop inequality rows that the (tightened) variable box already
  // implies. A ≤ row whose maximum activity over the box is at most its rhs
  // can never bind — for the root LP or for any branch-and-bound node,
  // since branch fixings only shrink the box the extreme activity came
  // from. The ≥ mirror uses the minimum activity.
  for (int i = 0; i < m; ++i) {
    if (drop[static_cast<size_t>(i)]) continue;
    const LpRow& row = problem.row(i);
    if (row.type == RowType::kEq || row.indices.size() < 2) continue;
    const bool want_max = row.type == RowType::kLe;
    double extreme = 0.0;
    bool unbounded = false;
    for (size_t k = 0; k < row.indices.size(); ++k) {
      const size_t v = static_cast<size_t>(row.indices[k]);
      const double a = row.values[k];
      const double contrib =
          (a > 0.0) == want_max ? a * ub[v] : a * lb[v];
      if (std::isinf(contrib)) {
        unbounded = true;
        break;
      }
      extreme += contrib;
    }
    if (unbounded) continue;
    const bool redundant =
        want_max ? extreme <= row.rhs : extreme >= row.rhs;
    if (redundant) {
      drop[static_cast<size_t>(i)] = 1;
      ++summary->redundant_rows_dropped;
    }
  }

  LpProblem reduced;
  for (int v = 0; v < n; ++v) {
    reduced.AddVariable(lb[static_cast<size_t>(v)], ub[static_cast<size_t>(v)],
                        problem.cost(v));
  }
  for (int i = 0; i < m; ++i) {
    if (drop[static_cast<size_t>(i)]) continue;
    const LpRow& row = problem.row(i);
    std::vector<std::pair<int, double>> coeffs;
    coeffs.reserve(row.indices.size());
    for (size_t k = 0; k < row.indices.size(); ++k) {
      coeffs.emplace_back(row.indices[k], row.values[k]);
    }
    reduced.AddRow(row.type, row.rhs, std::move(coeffs));
  }

  static obs::Counter& singleton = obs::MetricsRegistry::Global().GetCounter(
      "solver.presolve_singleton_rows");
  static obs::Counter& duplicate = obs::MetricsRegistry::Global().GetCounter(
      "solver.presolve_duplicate_rows");
  static obs::Counter& scaled = obs::MetricsRegistry::Global().GetCounter(
      "solver.presolve_scaled_duplicate_rows");
  static obs::Counter& dominated = obs::MetricsRegistry::Global().GetCounter(
      "solver.presolve_dominated_rows");
  static obs::Counter& redundant = obs::MetricsRegistry::Global().GetCounter(
      "solver.presolve_redundant_rows");
  static obs::Counter& strengthened = obs::MetricsRegistry::Global().GetCounter(
      "solver.presolve_activity_bounds");
  singleton.Add(static_cast<uint64_t>(summary->singleton_rows_dropped));
  duplicate.Add(static_cast<uint64_t>(summary->duplicate_rows_dropped));
  scaled.Add(static_cast<uint64_t>(summary->scaled_duplicate_rows_dropped));
  dominated.Add(static_cast<uint64_t>(summary->dominated_rows_dropped));
  redundant.Add(static_cast<uint64_t>(summary->redundant_rows_dropped));
  strengthened.Add(static_cast<uint64_t>(summary->activity_bounds_tightened));
  return reduced;
}

}  // namespace nose
