#include "solver/certificate.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace nose {

namespace {

/// Hexfloat rendering (%a): round-trips every finite double bit-exactly
/// through strtod, and prints "inf"/"-inf"/"nan" for the specials.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return std::string(buf);
}

bool ParseDouble(const std::string& tok, double* out) {
  const char* s = tok.c_str();
  char* end = nullptr;
  errno = 0;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0' && errno != ERANGE;
}

bool ParseInt(const std::string& tok, long min, long max, long* out) {
  const char* s = tok.c_str();
  char* end = nullptr;
  errno = 0;
  *out = std::strtol(s, &end, 10);
  return end != s && *end == '\0' && errno == 0 && *out >= min && *out <= max;
}

/// Line cursor over the serialized text: tracks the 1-based line number for
/// error messages and splits each line into whitespace tokens.
struct LineReader {
  std::istringstream in;
  int line_no = 0;

  explicit LineReader(const std::string& text) : in(text) {}

  bool Next(std::vector<std::string>* tokens, std::string* raw) {
    std::string line;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      if (raw != nullptr) *raw = line;
      tokens->clear();
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens->push_back(tok);
      if (!tokens->empty()) return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("certificate line " +
                                   std::to_string(line_no) + ": " + what);
  }
};

constexpr const char* kHeader = "nose-certificate";
constexpr const char* kVersion = "v1";

}  // namespace

std::string CertificateToString(const SolveCertificate& cert) {
  std::string out;
  out.reserve(4096);
  auto append = [&out](const std::string& s) { out += s; };
  append(std::string(kHeader) + " " + kVersion + "\n");
  append("instance " + (cert.instance.empty() ? "-" : cert.instance) + "\n");
  append("status " + (cert.status.empty() ? "-" : cert.status) + "\n");
  append("objective " + FormatDouble(cert.objective) + "\n");

  const int n = cert.problem.num_variables();
  const int m = cert.problem.num_rows();
  append("vars " + std::to_string(n) + "\n");
  for (int j = 0; j < n; ++j) {
    append("v " + FormatDouble(cert.problem.lower_bound(j)) + " " +
           FormatDouble(cert.problem.upper_bound(j)) + " " +
           FormatDouble(cert.problem.cost(j)) + "\n");
  }
  append("rows " + std::to_string(m) + "\n");
  for (int i = 0; i < m; ++i) {
    const LpRow& row = cert.problem.row(i);
    const char sense = row.type == RowType::kLe   ? 'L'
                       : row.type == RowType::kGe ? 'G'
                                                  : 'E';
    std::string line = "r ";
    line += sense;
    line += " " + FormatDouble(row.rhs) + " " +
            std::to_string(row.indices.size());
    for (size_t k = 0; k < row.indices.size(); ++k) {
      line += " " + std::to_string(row.indices[k]) + " " +
              FormatDouble(row.values[k]);
    }
    append(line + "\n");
  }

  std::string bin = "binaries " + std::to_string(cert.binary_vars.size());
  for (int v : cert.binary_vars) bin += " " + std::to_string(v);
  append(bin + "\n");

  std::string xs = "x " + std::to_string(cert.x.size());
  for (double v : cert.x) xs += " " + FormatDouble(v);
  append(xs + "\n");

  append(std::string("root ") + (cert.root_available ? "1" : "0") + " " +
         FormatDouble(cert.root_objective) + "\n");
  if (cert.root_available) {
    std::string ds = "duals " + std::to_string(cert.root_duals.size());
    for (double y : cert.root_duals) ds += " " + FormatDouble(y);
    append(ds + "\n");
  }
  append("end\n");
  return out;
}

Status WriteCertificate(const SolveCertificate& cert,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Internal("cannot open certificate file for writing: " +
                            path);
  }
  const std::string text = CertificateToString(cert);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) {
    return Status::Internal("short write to certificate file: " + path);
  }
  return Status::Ok();
}

StatusOr<SolveCertificate> ParseCertificate(const std::string& text) {
  LineReader reader(text);
  std::vector<std::string> tok;
  std::string raw;

  if (!reader.Next(&tok, &raw) || tok.size() != 2 || tok[0] != kHeader) {
    return reader.Error("expected '" + std::string(kHeader) + " " + kVersion +
                        "' header");
  }
  if (tok[1] != kVersion) {
    return reader.Error("unsupported certificate version '" + tok[1] + "'");
  }

  SolveCertificate cert;
  if (!reader.Next(&tok, &raw) || tok[0] != "instance" || tok.size() < 2) {
    return reader.Error("expected 'instance <label>'");
  }
  for (size_t k = 1; k < tok.size(); ++k) {
    if (k > 1) cert.instance += " ";
    cert.instance += tok[k];
  }
  if (cert.instance == "-") cert.instance.clear();

  if (!reader.Next(&tok, &raw) || tok[0] != "status" || tok.size() != 2) {
    return reader.Error("expected 'status <name>'");
  }
  cert.status = tok[1] == "-" ? "" : tok[1];

  if (!reader.Next(&tok, &raw) || tok[0] != "objective" || tok.size() != 2 ||
      !ParseDouble(tok[1], &cert.objective)) {
    return reader.Error("expected 'objective <value>'");
  }

  long n = 0;
  if (!reader.Next(&tok, &raw) || tok[0] != "vars" || tok.size() != 2 ||
      !ParseInt(tok[1], 0, 100000000, &n)) {
    return reader.Error("expected 'vars <count>'");
  }
  for (long j = 0; j < n; ++j) {
    double lb = 0.0, ub = 0.0, cost = 0.0;
    if (!reader.Next(&tok, &raw) || tok[0] != "v" || tok.size() != 4 ||
        !ParseDouble(tok[1], &lb) || !ParseDouble(tok[2], &ub) ||
        !ParseDouble(tok[3], &cost)) {
      return reader.Error("expected 'v <lb> <ub> <cost>'");
    }
    cert.problem.AddVariable(lb, ub, cost);
  }

  long m = 0;
  if (!reader.Next(&tok, &raw) || tok[0] != "rows" || tok.size() != 2 ||
      !ParseInt(tok[1], 0, 100000000, &m)) {
    return reader.Error("expected 'rows <count>'");
  }
  for (long i = 0; i < m; ++i) {
    if (!reader.Next(&tok, &raw) || tok[0] != "r" || tok.size() < 4) {
      return reader.Error("expected 'r <sense> <rhs> <nnz> ...'");
    }
    RowType type;
    if (tok[1] == "L") {
      type = RowType::kLe;
    } else if (tok[1] == "G") {
      type = RowType::kGe;
    } else if (tok[1] == "E") {
      type = RowType::kEq;
    } else {
      return reader.Error("unknown row sense '" + tok[1] + "'");
    }
    double rhs = 0.0;
    long nnz = 0;
    if (!ParseDouble(tok[2], &rhs) || !ParseInt(tok[3], 0, n, &nnz) ||
        tok.size() != static_cast<size_t>(4 + 2 * nnz)) {
      return reader.Error("malformed row coefficient list");
    }
    std::vector<std::pair<int, double>> coeffs;
    coeffs.reserve(static_cast<size_t>(nnz));
    for (long k = 0; k < nnz; ++k) {
      long idx = 0;
      double val = 0.0;
      if (!ParseInt(tok[static_cast<size_t>(4 + 2 * k)], 0, n - 1, &idx) ||
          !ParseDouble(tok[static_cast<size_t>(5 + 2 * k)], &val)) {
        return reader.Error("malformed row coefficient");
      }
      coeffs.emplace_back(static_cast<int>(idx), val);
    }
    cert.problem.AddRow(type, rhs, std::move(coeffs));
  }

  long nbin = 0;
  if (!reader.Next(&tok, &raw) || tok[0] != "binaries" || tok.size() < 2 ||
      !ParseInt(tok[1], 0, n, &nbin) ||
      tok.size() != static_cast<size_t>(2 + nbin)) {
    return reader.Error("expected 'binaries <count> <indices...>'");
  }
  for (long k = 0; k < nbin; ++k) {
    long idx = 0;
    if (!ParseInt(tok[static_cast<size_t>(2 + k)], 0, n - 1, &idx)) {
      return reader.Error("binary index out of range");
    }
    cert.binary_vars.push_back(static_cast<int>(idx));
  }

  long nx = 0;
  if (!reader.Next(&tok, &raw) || tok[0] != "x" || tok.size() < 2 ||
      !ParseInt(tok[1], 0, n, &nx) ||
      tok.size() != static_cast<size_t>(2 + nx)) {
    return reader.Error("expected 'x <count> <values...>'");
  }
  if (nx != n) {
    return reader.Error("solution vector length does not match 'vars'");
  }
  for (long k = 0; k < nx; ++k) {
    double v = 0.0;
    if (!ParseDouble(tok[static_cast<size_t>(2 + k)], &v)) {
      return reader.Error("malformed solution value");
    }
    cert.x.push_back(v);
  }

  long root_flag = 0;
  if (!reader.Next(&tok, &raw) || tok[0] != "root" || tok.size() != 3 ||
      !ParseInt(tok[1], 0, 1, &root_flag) ||
      !ParseDouble(tok[2], &cert.root_objective)) {
    return reader.Error("expected 'root <0|1> <objective>'");
  }
  cert.root_available = root_flag == 1;
  if (cert.root_available) {
    long nd = 0;
    if (!reader.Next(&tok, &raw) || tok[0] != "duals" || tok.size() < 2 ||
        !ParseInt(tok[1], 0, m, &nd) ||
        tok.size() != static_cast<size_t>(2 + nd)) {
      return reader.Error("expected 'duals <count> <values...>'");
    }
    if (nd != m) {
      return reader.Error("dual vector length does not match 'rows'");
    }
    for (long k = 0; k < nd; ++k) {
      double y = 0.0;
      if (!ParseDouble(tok[static_cast<size_t>(2 + k)], &y)) {
        return reader.Error("malformed dual value");
      }
      cert.root_duals.push_back(y);
    }
  }

  if (!reader.Next(&tok, &raw) || tok[0] != "end") {
    return reader.Error("expected 'end'");
  }
  return cert;
}

StatusOr<SolveCertificate> ReadCertificate(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open certificate file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCertificate(buf.str());
}

}  // namespace nose
