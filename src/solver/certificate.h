#ifndef NOSE_SOLVER_CERTIFICATE_H_
#define NOSE_SOLVER_CERTIFICATE_H_

#include <string>
#include <vector>

#include "solver/lp.h"
#include "util/status.h"
#include "util/statusor.h"

namespace nose {

/// A machine-checkable record of one branch-and-bound solve: the exact BIP
/// instance plus the solver's claims about it. The certificate is
/// self-contained — it embeds a full copy of the LpProblem — so an
/// independent checker (analysis/certify.h) can re-verify every claim with
/// exact rational arithmetic, without trusting the advisor, the optimizer,
/// or the floating-point simplex that produced it. This is the gate the
/// solver rewrite work runs behind: engine agreement can go blind to a
/// shared bug, a checked certificate cannot.
///
/// Claims, in checker order:
///   1. `x` is primally feasible for every row and bound of `problem`, and
///      integral on `binary_vars` (exact arithmetic; the only tolerance is
///      an explicit, documented slack for rows with non-integer
///      coefficients such as the storage constraint).
///   2. `objective` equals cᵀx recomputed exactly.
///   3. When `root_available`, `root_duals` assembles a valid lower bound
///      on ANY feasible solution via weak duality (wrong-signed entries are
///      clamped, so even corrupted duals can only weaken the bound), and
///      `objective` − bound is the certified optimality gap.
struct SolveCertificate {
  /// Free-form label, e.g. "rubis:default" (reporting only).
  std::string instance;
  /// The exact instance the claims refer to.
  LpProblem problem;
  /// Variables the solver was required to make integral.
  std::vector<int> binary_vars;

  /// BipStatusName() of the solve that produced `x`.
  std::string status;
  /// Solver-claimed optimal objective.
  double objective = 0.0;
  /// Solver-claimed solution, one value per variable of `problem`.
  std::vector<double> x;

  /// True when a cold root-relaxation solve yielded dual multipliers.
  bool root_available = false;
  /// Root LP optimum as the solver saw it (reporting only; the checker
  /// derives its own bound from the duals).
  double root_objective = 0.0;
  /// One multiplier per row of `problem`. Sign convention: y ≥ 0 for ≥
  /// rows, y ≤ 0 for ≤ rows, free for =.
  std::vector<double> root_duals;
};

/// Renders the certificate in a line-oriented text format. Doubles are
/// written as C hexfloats (%a), which round-trip exactly through strtod —
/// the serialized form carries the same bits the solver produced, so the
/// exact-arithmetic checker verifies the real solve, not a decimal
/// approximation of it.
std::string CertificateToString(const SolveCertificate& cert);

/// Writes CertificateToString(cert) to `path`.
Status WriteCertificate(const SolveCertificate& cert, const std::string& path);

/// Inverse of CertificateToString. Malformed input yields InvalidArgument
/// with a line-anchored message (the checker maps this to NOSE-C001).
StatusOr<SolveCertificate> ParseCertificate(const std::string& text);

/// Reads and parses `path`.
StatusOr<SolveCertificate> ReadCertificate(const std::string& path);

}  // namespace nose

#endif  // NOSE_SOLVER_CERTIFICATE_H_
