#ifndef NOSE_SOLVER_LP_H_
#define NOSE_SOLVER_LP_H_

#include <limits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace nose {

/// Sense of a linear constraint row.
enum class RowType { kLe, kGe, kEq };

/// Termination status of an LP solve.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* LpStatusName(LpStatus status);

/// Which simplex core executes a solve. kFactorized is the production
/// engine: an LU-factorized revised simplex (Markowitz-pivoted sparse LU
/// of the basis with product-form updates and periodic refactorization —
/// see solver/factorization.h) that prices directly from the original
/// columns, so its fill tracks nnz(basis) instead of the tableau's B⁻¹A.
/// kSparse keeps the explicit-tableau sparse core and kDense the original
/// full-tableau implementation as correctness and benchmark baselines
/// (solver_micro --json compares all three, and CI fails if their optima
/// diverge).
enum class LpEngine { kSparse, kDense, kFactorized };

const char* LpEngineName(LpEngine engine);

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< variable values at the optimum (if kOptimal)
  int iterations = 0;
  bool hot_started = false;  ///< true if a starting basis was loaded
  /// Dual value per original constraint row, filled only when the caller
  /// asked for duals (Solve's `duals` out-parameter) and the solve ended
  /// kOptimal. The factorized engine recovers duals with one BTRAN against
  /// the optimal basis, hot-started or not; the tableau engines read them
  /// off reduced costs of identity columns and therefore only fill duals
  /// for cold starts (a hot-started tableau carries no identity columns
  /// for equality rows). Sign convention: y_i ≥ 0 certifies a binding ≥
  /// row, y_i ≤ 0 a binding ≤ row, free for =. The values are
  /// floating-point candidates — the certificate checker (analysis/
  /// certify.h) re-derives an exact safe bound from them rather than
  /// trusting their feasibility.
  std::vector<double> duals;
};

/// A simplex basis snapshot: one status per column (structural variables
/// first, then one slack per inequality row in row order). 0 = at lower
/// bound, 1 = at upper bound, 2 = basic. Captured from an optimal solve and
/// fed back to a later solve of a problem with the SAME rows (only costs
/// and bounds may differ) to skip phase 1 entirely. A basis that does not
/// fit — wrong size, wrong basic count, singular, or primal infeasible
/// under the new bounds — is rejected and the solve falls back to the cold
/// crash start, so stale bases cost a failed load, never a wrong answer.
/// The factorized engine goes one step further before giving up on a
/// primal-infeasible load: branch-and-bound children differ from their
/// parent only in bounds, which keeps the parent basis dual feasible, so a
/// short bounded-variable dual-simplex run drives the violated basics back
/// inside their bounds in a handful of pivots.
struct LpBasis {
  std::vector<uint8_t> status;

  bool empty() const { return status.empty(); }
  void clear() { status.clear(); }
};

/// One constraint row in CSR style: parallel index/value arrays with
/// strictly increasing indices. The schema optimizer's BIPs are >95%
/// structural zeros, so rows never materialize dense coefficient vectors.
struct LpRow {
  RowType type = RowType::kEq;
  double rhs = 0.0;
  std::vector<int> indices;
  std::vector<double> values;
};

/// Sorts and merges naive (variable, coefficient) terms into an LpRow.
/// Duplicate variable entries are summed; exact-zero sums are kept (the
/// caller asked for the variable to appear in the row).
LpRow MakeLpRow(RowType type, double rhs,
                std::vector<std::pair<int, double>> coeffs);

class LpProblem;

/// Rows staged outside an LpProblem — e.g. built per plan space on worker
/// threads — and appended later with LpProblem::AppendRows() in a
/// deterministic order. The sort/merge work of AddRow happens here, off
/// the critical serial path.
class LpRowBuffer {
 public:
  /// Equivalent to LpProblem::AddRow, staged.
  void Add(RowType type, double rhs,
           std::vector<std::pair<int, double>> coeffs);

  size_t size() const { return rows_.size(); }
  size_t num_nonzeros() const { return num_nonzeros_; }

 private:
  friend class LpProblem;
  std::vector<LpRow> rows_;
  size_t num_nonzeros_ = 0;
};

/// A linear program: minimize cᵀx subject to row constraints and variable
/// bounds l ≤ x ≤ u. Build incrementally, then Solve(). The default solver
/// is an LU-factorized two-phase revised primal simplex with bounded
/// variables (nonbasic variables rest at either bound; bound flips are
/// handled without pivots): the basis inverse is held as a Markowitz
/// sparse LU plus product-form updates, the entering column and pivot row
/// come from FTRAN/BTRAN against the factors, pricing runs on
/// incrementally maintained dense reduced costs, and a slack crash basis
/// skips phase-1 work for every inequality row that starts feasible.
/// Designed for the sparse flow-structured instances NoSE's schema
/// optimizer emits; replaces the paper's use of Gurobi.
class LpProblem {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// Adds a variable with bounds [lb, ub] and objective coefficient `cost`.
  /// Returns its index.
  int AddVariable(double lb, double ub, double cost);

  /// Adds a constraint  Σ coeff·x  (≤ | ≥ | =)  rhs. Duplicate variable
  /// entries in `coeffs` are summed.
  void AddRow(RowType type, double rhs,
              std::vector<std::pair<int, double>> coeffs);

  /// Appends pre-staged rows in buffer order. Every referenced variable
  /// must already exist.
  void AppendRows(LpRowBuffer&& buffer);

  int num_variables() const { return static_cast<int>(cost_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  /// Read access to a constraint row (introspection: reference solvers,
  /// lint, benchmarks).
  const LpRow& row(int i) const { return rows_[static_cast<size_t>(i)]; }
  /// Structural nonzero count across all rows (after duplicate merging) —
  /// the BIP density statistic the optimizer reports.
  size_t num_nonzeros() const { return num_nonzeros_; }

  double cost(int var) const { return cost_[static_cast<size_t>(var)]; }
  double lower_bound(int var) const { return lb_[static_cast<size_t>(var)]; }
  double upper_bound(int var) const { return ub_[static_cast<size_t>(var)]; }
  void SetBounds(int var, double lb, double ub);
  void SetCost(int var, double cost);

  /// Solves the LP. `bound_overrides` optionally tightens per-variable
  /// bounds for this solve only (used by branch-and-bound nodes);
  /// entries are (var, lb, ub). `deadline_seconds` (0 = none) aborts an
  /// overlong solve with kIterationLimit so callers stay responsive.
  /// `engine` selects the simplex core; all three return the same optima
  /// (within tolerances — kSparse and kDense are bitwise-identical by
  /// construction; kFactorized follows its own floating-point path and
  /// agrees to the solver tolerances). kFactorized is the default and the
  /// fastest on the optimizer's instances, widening with workload size
  /// (solver_micro --json measures the gaps and gates CI on agreement).
  ///
  /// `start_basis` (sparse and factorized engines) hot-starts the solve
  /// from a basis captured by an earlier solve of the same constraint
  /// rows; on a successful load phase 1 is skipped, and the factorized
  /// engine additionally repairs bound-change infeasibility with dual
  /// simplex pivots. `final_basis` (sparse and factorized engines)
  /// receives the optimal basis of this solve, or is cleared when none is
  /// available (non-optimal exit, artificial still basic, or the dense
  /// engine).
  ///
  /// `duals`, when non-null, receives one multiplier per constraint row at
  /// the optimum (see LpResult::duals); cleared when the solve was not
  /// cleanly optimal, or — tableau engines only — was hot-started.
  LpResult Solve(
      const std::vector<std::tuple<int, double, double>>& bound_overrides = {},
      int max_iterations = 0, double deadline_seconds = 0.0,
      LpEngine engine = LpEngine::kFactorized,
      const LpBasis* start_basis = nullptr,
      LpBasis* final_basis = nullptr,
      std::vector<double>* duals = nullptr) const;

 private:
  std::vector<double> cost_;
  std::vector<double> lb_;
  std::vector<double> ub_;
  std::vector<LpRow> rows_;
  size_t num_nonzeros_ = 0;
};

}  // namespace nose

#endif  // NOSE_SOLVER_LP_H_
