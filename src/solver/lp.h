#ifndef NOSE_SOLVER_LP_H_
#define NOSE_SOLVER_LP_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace nose {

/// Sense of a linear constraint row.
enum class RowType { kLe, kGe, kEq };

/// Termination status of an LP solve.
enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* LpStatusName(LpStatus status);

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< variable values at the optimum (if kOptimal)
  int iterations = 0;
};

/// A linear program: minimize cᵀx subject to row constraints and variable
/// bounds l ≤ x ≤ u. Build incrementally, then Solve(). The solver is a
/// dense full-tableau two-phase primal simplex with bounded variables
/// (nonbasic variables rest at either bound; bound flips are handled
/// without pivots). Designed for the small/medium instances NoSE's schema
/// optimizer emits; replaces the paper's use of Gurobi.
class LpProblem {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// Adds a variable with bounds [lb, ub] and objective coefficient `cost`.
  /// Returns its index.
  int AddVariable(double lb, double ub, double cost);

  /// Adds a constraint  Σ coeff·x  (≤ | ≥ | =)  rhs. Duplicate variable
  /// entries in `coeffs` are summed.
  void AddRow(RowType type, double rhs,
              std::vector<std::pair<int, double>> coeffs);

  int num_variables() const { return static_cast<int>(cost_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  /// Structural nonzero count across all rows (after duplicate merging) —
  /// the BIP density statistic the optimizer reports.
  size_t num_nonzeros() const { return num_nonzeros_; }

  double cost(int var) const { return cost_[static_cast<size_t>(var)]; }
  double lower_bound(int var) const { return lb_[static_cast<size_t>(var)]; }
  double upper_bound(int var) const { return ub_[static_cast<size_t>(var)]; }
  void SetBounds(int var, double lb, double ub);
  void SetCost(int var, double cost);

  /// Solves the LP. `bound_overrides` optionally tightens per-variable
  /// bounds for this solve only (used by branch-and-bound nodes);
  /// entries are (var, lb, ub). `deadline_seconds` (0 = none) aborts an
  /// overlong solve with kIterationLimit so callers stay responsive.
  LpResult Solve(
      const std::vector<std::tuple<int, double, double>>& bound_overrides = {},
      int max_iterations = 0, double deadline_seconds = 0.0) const;

 private:
  struct Row {
    RowType type;
    double rhs;
    std::vector<std::pair<int, double>> coeffs;
  };

  std::vector<double> cost_;
  std::vector<double> lb_;
  std::vector<double> ub_;
  std::vector<Row> rows_;
  size_t num_nonzeros_ = 0;
};

}  // namespace nose

#endif  // NOSE_SOLVER_LP_H_
