#include "solver/lp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace nose {

const char* LpStatusName(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "?";
}

int LpProblem::AddVariable(double lb, double ub, double cost) {
  assert(lb <= ub);
  cost_.push_back(cost);
  lb_.push_back(lb);
  ub_.push_back(ub);
  return static_cast<int>(cost_.size()) - 1;
}

void LpProblem::AddRow(RowType type, double rhs,
                       std::vector<std::pair<int, double>> coeffs) {
  // Sum duplicate entries so callers can emit terms naively.
  std::sort(coeffs.begin(), coeffs.end());
  std::vector<std::pair<int, double>> merged;
  for (const auto& [var, coeff] : coeffs) {
    assert(var >= 0 && var < num_variables());
    if (!merged.empty() && merged.back().first == var) {
      merged.back().second += coeff;
    } else {
      merged.emplace_back(var, coeff);
    }
  }
  num_nonzeros_ += merged.size();
  rows_.push_back(Row{type, rhs, std::move(merged)});
}

void LpProblem::SetBounds(int var, double lb, double ub) {
  assert(lb <= ub);
  lb_[static_cast<size_t>(var)] = lb;
  ub_[static_cast<size_t>(var)] = ub;
}

void LpProblem::SetCost(int var, double cost) {
  cost_[static_cast<size_t>(var)] = cost;
}

namespace {

constexpr double kDualTol = 1e-7;     // reduced-cost optimality tolerance
constexpr double kPivotTol = 1e-9;    // minimum pivot magnitude
constexpr double kPhase1Tol = 1e-6;   // residual infeasibility tolerance
constexpr double kDegenerateStep = 1e-10;
constexpr int kBlandTrigger = 60;  // degenerate iterations before Bland's rule

enum class VarStatus : uint8_t { kAtLower, kAtUpper, kBasic };

/// Dense full-tableau bounded-variable primal simplex. One instance per
/// Solve() call; not reused.
class SimplexTableau {
 public:
  SimplexTableau(int num_structural, std::vector<double> lb,
                 std::vector<double> ub, std::vector<double> cost)
      : n_(num_structural),
        lb_(std::move(lb)),
        ub_(std::move(ub)),
        cost_(std::move(cost)) {}

  /// Appends an equality row a·x = rhs over all currently known columns
  /// (slack columns must have been added as variables by the caller).
  void AddEqualityRow(std::vector<double> dense_row, double rhs) {
    matrix_.push_back(std::move(dense_row));
    rhs_.push_back(rhs);
  }

  int AddColumn(double lb, double ub, double cost) {
    lb_.push_back(lb);
    ub_.push_back(ub);
    cost_.push_back(cost);
    return static_cast<int>(cost_.size()) - 1;
  }

  LpResult Run(int max_iterations, double deadline_seconds);

 private:
  int NumCols() const { return static_cast<int>(cost_.size()); }
  int NumRows() const { return static_cast<int>(matrix_.size()); }

  double BoundValue(int j) const {
    return status_[static_cast<size_t>(j)] == VarStatus::kAtUpper
               ? ub_[static_cast<size_t>(j)]
               : lb_[static_cast<size_t>(j)];
  }

  bool IsFixed(int j) const {
    return ub_[static_cast<size_t>(j)] - lb_[static_cast<size_t>(j)] < 1e-12;
  }

  void ComputeReducedCosts(const std::vector<double>& phase_cost) {
    d_.assign(static_cast<size_t>(NumCols()), 0.0);
    for (int j = 0; j < NumCols(); ++j) {
      d_[static_cast<size_t>(j)] = phase_cost[static_cast<size_t>(j)];
    }
    for (int i = 0; i < NumRows(); ++i) {
      const double cb = phase_cost[static_cast<size_t>(basis_[static_cast<size_t>(i)])];
      if (cb == 0.0) continue;
      const std::vector<double>& row = matrix_[static_cast<size_t>(i)];
      for (int j = 0; j < NumCols(); ++j) {
        d_[static_cast<size_t>(j)] -= cb * row[static_cast<size_t>(j)];
      }
    }
  }

  /// Runs simplex iterations until optimality/unboundedness/limit for the
  /// current phase. Returns the LP status for this phase.
  LpStatus Iterate(int max_iterations, int* iterations_used);

  double deadline_seconds_ = 0.0;
  Stopwatch watch_;

  int n_;  // structural variable count (prefix of the columns)
  std::vector<double> lb_, ub_, cost_;
  std::vector<std::vector<double>> matrix_;  // m rows x NumCols()
  std::vector<double> rhs_;
  std::vector<VarStatus> status_;
  std::vector<int> basis_;    // per row: basic column
  std::vector<double> xb_;    // per row: value of the basic variable
  std::vector<double> d_;     // reduced costs for the active phase
  std::vector<double> devex_;  // devex reference weights (pricing)
  int degenerate_streak_ = 0;
};

LpStatus SimplexTableau::Iterate(int max_iterations, int* iterations_used) {
  const int m = NumRows();
  const int ncols = NumCols();
  int iter = 0;
  degenerate_streak_ = 0;
  devex_.assign(static_cast<size_t>(ncols), 1.0);
  for (; iter < max_iterations; ++iter) {
    if (deadline_seconds_ > 0.0 && (iter & 31) == 0 &&
        watch_.ElapsedSeconds() > deadline_seconds_) {
      *iterations_used += iter;
      return LpStatus::kIterationLimit;
    }
    const bool bland = degenerate_streak_ >= kBlandTrigger;
    // --- Pricing: devex (d_j^2 / w_j) cuts iteration counts on the highly
    // degenerate flow-structured LPs the schema optimizer emits; Bland's
    // rule takes over under prolonged stalling to guarantee termination.
    int enter = -1;
    double best_score = 0.0;
    for (int j = 0; j < ncols; ++j) {
      const VarStatus st = status_[static_cast<size_t>(j)];
      if (st == VarStatus::kBasic || IsFixed(j)) continue;
      const double dj = d_[static_cast<size_t>(j)];
      const bool eligible = (st == VarStatus::kAtLower && dj < -kDualTol) ||
                            (st == VarStatus::kAtUpper && dj > kDualTol);
      if (!eligible) continue;
      if (bland) {  // first eligible column
        enter = j;
        break;
      }
      const double score = dj * dj / devex_[static_cast<size_t>(j)];
      if (score > best_score) {
        best_score = score;
        enter = j;
      }
    }
    if (enter == -1) {
      *iterations_used += iter;
      return LpStatus::kOptimal;
    }

    const double dir =
        status_[static_cast<size_t>(enter)] == VarStatus::kAtLower ? 1.0 : -1.0;

    // --- Ratio test. ---
    double t_best = ub_[static_cast<size_t>(enter)] - lb_[static_cast<size_t>(enter)];
    int leave_row = -1;   // -1 => bound flip
    bool leave_at_upper = false;
    double best_pivot_mag = 0.0;
    for (int i = 0; i < m; ++i) {
      const double alpha = matrix_[static_cast<size_t>(i)][static_cast<size_t>(enter)];
      const double rate = dir * alpha;  // xb_i decreases at this rate
      if (std::abs(rate) <= kPivotTol) continue;
      const int k = basis_[static_cast<size_t>(i)];
      double limit;
      bool at_upper;
      if (rate > 0.0) {
        const double lbk = lb_[static_cast<size_t>(k)];
        if (lbk == -LpProblem::kInfinity) continue;
        limit = (xb_[static_cast<size_t>(i)] - lbk) / rate;
        at_upper = false;
      } else {
        const double ubk = ub_[static_cast<size_t>(k)];
        if (ubk == LpProblem::kInfinity) continue;
        limit = (xb_[static_cast<size_t>(i)] - ubk) / rate;
        at_upper = true;
      }
      if (limit < 0.0) limit = 0.0;  // guard tiny negative residuals
      const double mag = std::abs(alpha);
      const bool better =
          limit < t_best - 1e-10 ||
          (limit < t_best + 1e-10 && leave_row >= 0 &&
           (bland ? basis_[static_cast<size_t>(i)] <
                        basis_[static_cast<size_t>(leave_row)]
                  : mag > best_pivot_mag));
      if (better) {
        t_best = limit;
        leave_row = i;
        leave_at_upper = at_upper;
        best_pivot_mag = mag;
      }
    }

    if (t_best == LpProblem::kInfinity) {
      *iterations_used += iter;
      return LpStatus::kUnbounded;
    }
    degenerate_streak_ =
        (t_best <= kDegenerateStep) ? degenerate_streak_ + 1 : 0;

    // --- Apply the step to all basic values. ---
    if (t_best != 0.0) {
      for (int i = 0; i < m; ++i) {
        const double alpha =
            matrix_[static_cast<size_t>(i)][static_cast<size_t>(enter)];
        if (alpha != 0.0) xb_[static_cast<size_t>(i)] -= dir * alpha * t_best;
      }
    }

    if (leave_row == -1) {
      // Bound flip: the entering variable runs to its opposite bound.
      status_[static_cast<size_t>(enter)] =
          status_[static_cast<size_t>(enter)] == VarStatus::kAtLower
              ? VarStatus::kAtUpper
              : VarStatus::kAtLower;
      continue;
    }

    // --- Pivot: entering becomes basic in leave_row. ---
    const int leave_col = basis_[static_cast<size_t>(leave_row)];
    status_[static_cast<size_t>(leave_col)] =
        leave_at_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    const double enter_from =
        dir > 0 ? lb_[static_cast<size_t>(enter)] : ub_[static_cast<size_t>(enter)];
    basis_[static_cast<size_t>(leave_row)] = enter;
    status_[static_cast<size_t>(enter)] = VarStatus::kBasic;
    xb_[static_cast<size_t>(leave_row)] = enter_from + dir * t_best;

    // Gauss-Jordan elimination on the entering column.
    std::vector<double>& prow = matrix_[static_cast<size_t>(leave_row)];
    const double pivot = prow[static_cast<size_t>(enter)];
    assert(std::abs(pivot) > kPivotTol);
    const double inv = 1.0 / pivot;
    for (double& v : prow) v *= inv;
    prow[static_cast<size_t>(enter)] = 1.0;  // exact
    for (int i = 0; i < m; ++i) {
      if (i == leave_row) continue;
      std::vector<double>& row = matrix_[static_cast<size_t>(i)];
      const double factor = row[static_cast<size_t>(enter)];
      if (factor == 0.0) continue;
      for (int j = 0; j < ncols; ++j) {
        row[static_cast<size_t>(j)] -= factor * prow[static_cast<size_t>(j)];
      }
      row[static_cast<size_t>(enter)] = 0.0;  // exact
    }
    const double dfactor = d_[static_cast<size_t>(enter)];
    if (dfactor != 0.0) {
      for (int j = 0; j < ncols; ++j) {
        d_[static_cast<size_t>(j)] -= dfactor * prow[static_cast<size_t>(j)];
      }
      d_[static_cast<size_t>(enter)] = 0.0;
    }
    // Devex weight update against the (normalized) pivot row.
    const double w_enter = devex_[static_cast<size_t>(enter)];
    for (int j = 0; j < ncols; ++j) {
      const double a = prow[static_cast<size_t>(j)];
      if (a == 0.0) continue;
      double& w = devex_[static_cast<size_t>(j)];
      const double candidate = a * a * w_enter;
      if (candidate > w) w = candidate;
    }
    devex_[static_cast<size_t>(leave_col)] =
        std::max(1.0, w_enter / std::max(pivot * pivot, 1e-12));
  }
  *iterations_used += iter;
  return LpStatus::kIterationLimit;
}

LpResult SimplexTableau::Run(int max_iterations, double deadline_seconds) {
  deadline_seconds_ = deadline_seconds;
  watch_.Reset();
  const int m = NumRows();
  LpResult result;

  // Initial point: every column rests at a finite bound.
  status_.assign(static_cast<size_t>(NumCols()), VarStatus::kAtLower);
  for (int j = 0; j < NumCols(); ++j) {
    if (lb_[static_cast<size_t>(j)] == -LpProblem::kInfinity) {
      assert(ub_[static_cast<size_t>(j)] != LpProblem::kInfinity &&
             "free variables are not supported");
      status_[static_cast<size_t>(j)] = VarStatus::kAtUpper;
    }
  }

  // Residual per row given the initial nonbasic values; artificial columns
  // absorb it so the artificial basis starts feasible.
  std::vector<double> residual(static_cast<size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) {
    double r = rhs_[static_cast<size_t>(i)];
    const std::vector<double>& row = matrix_[static_cast<size_t>(i)];
    for (int j = 0; j < NumCols(); ++j) {
      const double v = BoundValue(j);
      if (v != 0.0) r -= row[static_cast<size_t>(j)] * v;
    }
    residual[static_cast<size_t>(i)] = r;
  }

  // Negate rows with negative residual so that every artificial can enter
  // with coefficient +1 and the initial basis matrix is the identity
  // (tableau rows must equal B⁻¹A for the reduced-cost formula).
  for (int i = 0; i < m; ++i) {
    if (residual[static_cast<size_t>(i)] < 0.0) {
      for (double& v : matrix_[static_cast<size_t>(i)]) v = -v;
      rhs_[static_cast<size_t>(i)] = -rhs_[static_cast<size_t>(i)];
      residual[static_cast<size_t>(i)] = -residual[static_cast<size_t>(i)];
    }
  }

  const int first_artificial = NumCols();
  basis_.resize(static_cast<size_t>(m));
  xb_.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    const int art = AddColumn(0.0, LpProblem::kInfinity, 0.0);
    status_.push_back(VarStatus::kBasic);
    for (int r = 0; r < m; ++r) {
      matrix_[static_cast<size_t>(r)].push_back(r == i ? 1.0 : 0.0);
    }
    basis_[static_cast<size_t>(i)] = art;
    xb_[static_cast<size_t>(i)] = residual[static_cast<size_t>(i)];
  }

  // --- Phase 1: minimize the sum of artificials. ---
  std::vector<double> phase1_cost(static_cast<size_t>(NumCols()), 0.0);
  for (int j = first_artificial; j < NumCols(); ++j) {
    phase1_cost[static_cast<size_t>(j)] = 1.0;
  }
  ComputeReducedCosts(phase1_cost);
  result.iterations = 0;
  LpStatus phase1 = Iterate(max_iterations, &result.iterations);
  if (phase1 == LpStatus::kIterationLimit) {
    result.status = LpStatus::kIterationLimit;
    return result;
  }
  double infeasibility = 0.0;
  for (int i = 0; i < m; ++i) {
    if (basis_[static_cast<size_t>(i)] >= first_artificial) {
      infeasibility += xb_[static_cast<size_t>(i)];
    }
  }
  for (int j = first_artificial; j < NumCols(); ++j) {
    if (status_[static_cast<size_t>(j)] == VarStatus::kAtUpper) {
      infeasibility += std::abs(ub_[static_cast<size_t>(j)]);
    }
  }
  if (infeasibility > kPhase1Tol) {
    if (std::getenv("NOSE_LP_DEBUG") != nullptr) {
      std::fprintf(stderr, "[lp] phase-1 infeasibility %.3e (rows=%d)\n",
                   infeasibility, m);
    }
    result.status = LpStatus::kInfeasible;
    return result;
  }

  // Freeze artificials at zero for phase 2. Any still basic sit at 0 and
  // can only leave the basis degenerately, which is fine.
  for (int j = first_artificial; j < NumCols(); ++j) {
    ub_[static_cast<size_t>(j)] = 0.0;
    if (status_[static_cast<size_t>(j)] == VarStatus::kAtUpper) {
      status_[static_cast<size_t>(j)] = VarStatus::kAtLower;
    }
  }

  // --- Phase 2: original objective. ---
  std::vector<double> phase2_cost = cost_;
  phase2_cost.resize(static_cast<size_t>(NumCols()), 0.0);
  ComputeReducedCosts(phase2_cost);
  LpStatus phase2 = Iterate(max_iterations, &result.iterations);
  if (phase2 == LpStatus::kIterationLimit ||
      phase2 == LpStatus::kUnbounded) {
    result.status = phase2;
    return result;
  }

  // Extract structural values and the objective.
  result.x.assign(static_cast<size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) {
    if (status_[static_cast<size_t>(j)] != VarStatus::kBasic) {
      result.x[static_cast<size_t>(j)] = BoundValue(j);
    }
  }
  for (int i = 0; i < m; ++i) {
    const int k = basis_[static_cast<size_t>(i)];
    if (k < n_) result.x[static_cast<size_t>(k)] = xb_[static_cast<size_t>(i)];
  }
  result.objective = 0.0;
  for (int j = 0; j < n_; ++j) {
    result.objective += cost_[static_cast<size_t>(j)] * result.x[static_cast<size_t>(j)];
  }
  result.status = LpStatus::kOptimal;
  return result;
}

}  // namespace

LpResult LpProblem::Solve(
    const std::vector<std::tuple<int, double, double>>& bound_overrides,
    int max_iterations, double deadline_seconds) const {
  std::vector<double> lb = lb_;
  std::vector<double> ub = ub_;
  for (const auto& [var, olb, oub] : bound_overrides) {
    lb[static_cast<size_t>(var)] = olb;
    ub[static_cast<size_t>(var)] = oub;
  }

  const int n = num_variables();
  SimplexTableau tableau(n, std::move(lb), std::move(ub), cost_);

  // Slack columns: one per inequality row, so every row becomes equality.
  std::vector<int> slack_col(rows_.size(), -1);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].type != RowType::kEq) {
      slack_col[i] = tableau.AddColumn(0.0, kInfinity, 0.0);
    }
  }
  // Dense rows sized to structural + slack columns (artificials appended by
  // the tableau itself).
  int total_cols = n;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (slack_col[i] >= 0) total_cols = std::max(total_cols, slack_col[i] + 1);
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    std::vector<double> dense(static_cast<size_t>(total_cols), 0.0);
    double max_mag = 0.0;
    for (const auto& [var, coeff] : rows_[i].coeffs) {
      dense[static_cast<size_t>(var)] += coeff;
    }
    for (const auto& [var, coeff] : rows_[i].coeffs) {
      max_mag = std::max(max_mag, std::abs(dense[static_cast<size_t>(var)]));
    }
    // Row equilibration: scale each row to unit magnitude so rows mixing
    // byte-scale and unit-scale coefficients (e.g. storage constraints)
    // stay within the solver's absolute tolerances.
    const double scale = max_mag > 1e-12 ? 1.0 / max_mag : 1.0;
    if (scale != 1.0) {
      for (double& v : dense) v *= scale;
    }
    if (rows_[i].type == RowType::kLe) {
      dense[static_cast<size_t>(slack_col[i])] = 1.0;
    } else if (rows_[i].type == RowType::kGe) {
      dense[static_cast<size_t>(slack_col[i])] = -1.0;
    }
    tableau.AddEqualityRow(std::move(dense), rows_[i].rhs * scale);
  }

  if (max_iterations <= 0) {
    max_iterations = 20000 + 50 * (num_rows() + num_variables());
  }
  LpResult result = tableau.Run(max_iterations, deadline_seconds);
  static obs::Counter& solves =
      obs::MetricsRegistry::Global().GetCounter("solver.lp_solves");
  static obs::Counter& iterations = obs::MetricsRegistry::Global().GetCounter(
      "solver.simplex_iterations");
  solves.Increment();
  iterations.Add(static_cast<uint64_t>(result.iterations));
  return result;
}

}  // namespace nose
