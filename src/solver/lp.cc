#include "solver/lp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "obs/metrics.h"
#include "solver/factorization.h"
#include "solver/solve_log.h"
#include "util/stopwatch.h"

namespace nose {

const char* LpStatusName(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "?";
}

const char* LpEngineName(LpEngine engine) {
  switch (engine) {
    case LpEngine::kSparse:
      return "sparse";
    case LpEngine::kDense:
      return "dense";
    case LpEngine::kFactorized:
      return "factorized";
  }
  return "?";
}

LpRow MakeLpRow(RowType type, double rhs,
                std::vector<std::pair<int, double>> coeffs) {
  std::sort(coeffs.begin(), coeffs.end());
  LpRow row;
  row.type = type;
  row.rhs = rhs;
  row.indices.reserve(coeffs.size());
  row.values.reserve(coeffs.size());
  for (const auto& [var, coeff] : coeffs) {
    if (!row.indices.empty() && row.indices.back() == var) {
      row.values.back() += coeff;
    } else {
      row.indices.push_back(var);
      row.values.push_back(coeff);
    }
  }
  return row;
}

void LpRowBuffer::Add(RowType type, double rhs,
                      std::vector<std::pair<int, double>> coeffs) {
  rows_.push_back(MakeLpRow(type, rhs, std::move(coeffs)));
  num_nonzeros_ += rows_.back().indices.size();
}

int LpProblem::AddVariable(double lb, double ub, double cost) {
  assert(lb <= ub);
  cost_.push_back(cost);
  lb_.push_back(lb);
  ub_.push_back(ub);
  return static_cast<int>(cost_.size()) - 1;
}

void LpProblem::AddRow(RowType type, double rhs,
                       std::vector<std::pair<int, double>> coeffs) {
  // Sum duplicate entries so callers can emit terms naively.
  LpRow row = MakeLpRow(type, rhs, std::move(coeffs));
#ifndef NDEBUG
  for (int var : row.indices) assert(var >= 0 && var < num_variables());
#endif
  num_nonzeros_ += row.indices.size();
  rows_.push_back(std::move(row));
}

void LpProblem::AppendRows(LpRowBuffer&& buffer) {
#ifndef NDEBUG
  for (const LpRow& row : buffer.rows_) {
    for (int var : row.indices) assert(var >= 0 && var < num_variables());
  }
#endif
  num_nonzeros_ += buffer.num_nonzeros_;
  if (rows_.empty()) {
    rows_ = std::move(buffer.rows_);
  } else {
    rows_.reserve(rows_.size() + buffer.rows_.size());
    for (LpRow& row : buffer.rows_) rows_.push_back(std::move(row));
  }
  buffer.rows_.clear();
  buffer.num_nonzeros_ = 0;
}

void LpProblem::SetBounds(int var, double lb, double ub) {
  assert(lb <= ub);
  lb_[static_cast<size_t>(var)] = lb;
  ub_[static_cast<size_t>(var)] = ub;
}

void LpProblem::SetCost(int var, double cost) {
  cost_[static_cast<size_t>(var)] = cost;
}

namespace {

constexpr double kDualTol = 1e-7;     // reduced-cost optimality tolerance
constexpr double kPivotTol = 1e-9;    // minimum pivot magnitude
constexpr double kPhase1Tol = 1e-6;   // residual infeasibility tolerance
constexpr double kDegenerateStep = 1e-10;
constexpr int kBlandTrigger = 60;  // degenerate iterations before Bland's rule

enum class VarStatus : uint8_t { kAtLower, kAtUpper, kBasic };

// ===========================================================================
// Sparse core (default engine).
// ===========================================================================

/// A CSR row upgrades to dense storage once its fill passes 1/kDensifyDiv
/// of the column count: below that the two-pointer merge beats the
/// vectorized dense update, above it the merge is pure overhead (simplex
/// fill-in densifies pivot-heavy rows, and NoSE's storage-constraint rows
/// start half-dense already).
constexpr int kDensifyDiv = 5;  // densify a row above 20% fill

/// One working-tableau row: CSR while sparse, a plain dense vector after
/// fill-in crosses the threshold. Only exact zeros are elided from the CSR
/// form: a magnitude-based drop tolerance would perturb the tableau (a
/// dropped 1e-12 entry hit by a 1/kPivotTol pivot inverse reappears as
/// 1e-3), and the perturbations compound until the engine terminates
/// "optimally" at a point the exact LP rejects. Eliding only exact zeros —
/// and materializing them on densify — keeps every floating-point
/// operation identical to the dense tableau's, so both engines follow the
/// same pivot sequence and return bitwise-equal optima.
struct TabRow {
  std::vector<int> idx;      // CSR, valid when !is_dense
  std::vector<double> val;   // CSR, valid when !is_dense
  std::vector<double> full;  // valid when is_dense, sized to the column count
  bool is_dense = false;

  double Coeff(int j) const {
    if (is_dense) return full[static_cast<size_t>(j)];
    auto it = std::lower_bound(idx.begin(), idx.end(), j);
    return (it != idx.end() && *it == j)
               ? val[static_cast<size_t>(it - idx.begin())]
               : 0.0;
  }

  size_t NumStored() const { return is_dense ? full.size() : idx.size(); }

  void Densify(int ncols) {
    if (is_dense) return;
    full.assign(static_cast<size_t>(ncols), 0.0);
    for (size_t k = 0; k < idx.size(); ++k) {
      full[static_cast<size_t>(idx[k])] = val[k];
    }
    idx.clear();
    idx.shrink_to_fit();
    val.clear();
    val.shrink_to_fit();
    is_dense = true;
  }
};

/// target += factor * src, removing the `skip` column (the entering
/// column, whose cancellation is exact by construction). Sparse/sparse
/// runs a two-pointer merge eliding exactly-zero results; once either side
/// is dense the target is materialized and updated with the dense
/// engine's element-wise expression. `scratch` avoids per-call allocation.
void RowAxpy(TabRow* target, double factor, const TabRow& src, int skip,
             int ncols, TabRow* scratch) {
  if (!target->is_dense && !src.is_dense &&
      (target->idx.size() + src.idx.size()) * kDensifyDiv <=
          static_cast<size_t>(ncols)) {
    scratch->idx.clear();
    scratch->val.clear();
    scratch->idx.reserve(target->idx.size() + src.idx.size());
    scratch->val.reserve(target->idx.size() + src.idx.size());
    size_t a = 0, b = 0;
    const size_t an = target->idx.size();
    const size_t bn = src.idx.size();
    while (a < an || b < bn) {
      int j;
      double v;
      if (b == bn || (a < an && target->idx[a] < src.idx[b])) {
        j = target->idx[a];
        v = target->val[a];
        ++a;
      } else if (a == an || src.idx[b] < target->idx[a]) {
        j = src.idx[b];
        v = factor * src.val[b];
        ++b;
      } else {
        j = target->idx[a];
        v = target->val[a] + factor * src.val[b];
        ++a;
        ++b;
      }
      if (j == skip || v == 0.0) continue;
      scratch->idx.push_back(j);
      scratch->val.push_back(v);
    }
    std::swap(target->idx, scratch->idx);
    std::swap(target->val, scratch->val);
    return;
  }
  target->Densify(ncols);
  double* t = target->full.data();
  if (src.is_dense) {
    const double* s = src.full.data();
    for (int j = 0; j < ncols; ++j) {
      t[j] += factor * s[j];
    }
  } else {
    for (size_t k = 0; k < src.idx.size(); ++k) {
      t[src.idx[k]] += factor * src.val[k];
    }
  }
  t[skip] = 0.0;  // exact cancellation, as in the dense engine
}

/// Bounded-variable two-phase primal simplex over CSR rows. The constraint
/// rows hold B⁻¹A explicitly but sparsely, so one pivot costs
/// O(nnz(column) · nnz(pivot row)) instead of the dense tableau's O(m·n);
/// reduced costs and devex weights stay dense and are updated incrementally
/// against the pivot row's nonzeros only (revised-simplex-style pricing).
/// One instance per Solve() call; not reused.
class SparseSimplex {
 public:
  SparseSimplex(int num_structural, std::vector<double> lb,
                std::vector<double> ub, std::vector<double> cost)
      : n_(num_structural),
        lb_(std::move(lb)),
        ub_(std::move(ub)),
        cost_(std::move(cost)) {}

  /// Appends an equality row a·x = rhs over all currently known columns
  /// (slack columns must have been added as variables by the caller).
  /// `slack_col` is the row's own slack column, or -1 for an original
  /// equality row — it seeds the crash basis.
  void AddEqualityRow(TabRow row, double rhs, int slack_col) {
    rows_.push_back(std::move(row));
    rhs_.push_back(rhs);
    slack_col_.push_back(slack_col);
  }

  int AddColumn(double lb, double ub, double cost) {
    lb_.push_back(lb);
    ub_.push_back(ub);
    cost_.push_back(cost);
    return static_cast<int>(cost_.size()) - 1;
  }

  LpResult Run(int max_iterations, double deadline_seconds,
               const LpBasis* start_basis, LpBasis* final_basis,
               bool want_duals);

  /// Telemetry sink for this solve, or null (the default) for none. With a
  /// null sink the per-iteration cost is a handful of predictable branches.
  void set_stats(LpSolveStats* stats) { stats_ = stats; }
  int NumTableauCols() const { return NumCols(); }
  /// Stored tableau entries across all rows (CSR nonzeros; full width for
  /// densified rows) — the fill measure the telemetry samples.
  uint64_t StoredEntries() const {
    uint64_t total = 0;
    for (const TabRow& row : rows_) total += row.NumStored();
    return total;
  }
  int NumDenseRows() const {
    int n = 0;
    for (const TabRow& row : rows_) n += row.is_dense ? 1 : 0;
    return n;
  }

 private:
  int NumCols() const { return static_cast<int>(cost_.size()); }
  int NumRows() const { return static_cast<int>(rows_.size()); }

  /// Re-pivots the tableau onto `basis` (Gauss-Jordan over the stated basic
  /// columns) and checks primal feasibility under the current bounds.
  /// Returns false — with rows_/rhs_ restored — when the basis does not
  /// fit, so the caller falls back to the cold crash start.
  bool TryLoadBasis(const LpBasis& basis);

  double BoundValue(int j) const {
    return status_[static_cast<size_t>(j)] == VarStatus::kAtUpper
               ? ub_[static_cast<size_t>(j)]
               : lb_[static_cast<size_t>(j)];
  }

  bool IsFixed(int j) const {
    return ub_[static_cast<size_t>(j)] - lb_[static_cast<size_t>(j)] < 1e-12;
  }

  void ComputeReducedCosts(const std::vector<double>& phase_cost) {
    d_ = phase_cost;
    for (int i = 0; i < NumRows(); ++i) {
      const double cb =
          phase_cost[static_cast<size_t>(basis_[static_cast<size_t>(i)])];
      if (cb == 0.0) continue;
      const TabRow& row = rows_[static_cast<size_t>(i)];
      if (row.is_dense) {
        for (size_t j = 0; j < row.full.size(); ++j) {
          d_[j] -= cb * row.full[j];
        }
      } else {
        for (size_t k = 0; k < row.idx.size(); ++k) {
          d_[static_cast<size_t>(row.idx[k])] -= cb * row.val[k];
        }
      }
    }
  }

  /// Runs simplex iterations until optimality/unboundedness/limit for the
  /// current phase. Returns the LP status for this phase.
  LpStatus Iterate(int max_iterations, int* iterations_used);

  double deadline_seconds_ = 0.0;
  Stopwatch watch_;

  int n_;  // structural variable count (prefix of the columns)
  std::vector<double> lb_, ub_, cost_;
  std::vector<TabRow> rows_;  // m hybrid rows over NumCols() columns
  std::vector<double> rhs_;
  std::vector<int> slack_col_;  // per row: its slack column or -1
  /// Cold-start bookkeeping for dual extraction: the phase-1 sign
  /// normalization applied to each row (+1/-1), and the row's artificial
  /// column (-1 when its own slack seeded the crash basis).
  std::vector<double> row_sign_;
  std::vector<int> artificial_of_row_;
  std::vector<VarStatus> status_;
  std::vector<int> basis_;    // per row: basic column
  std::vector<double> xb_;    // per row: value of the basic variable
  std::vector<double> d_;     // reduced costs for the active phase
  std::vector<double> devex_;  // devex reference weights (pricing)
  int degenerate_streak_ = 0;
  LpSolveStats* stats_ = nullptr;  // telemetry sink; null = disabled
};

LpStatus SparseSimplex::Iterate(int max_iterations, int* iterations_used) {
  const int m = NumRows();
  const int ncols = NumCols();
  const int base_iter = *iterations_used;  // cumulative across phases
  int iter = 0;
  degenerate_streak_ = 0;
  devex_.assign(static_cast<size_t>(ncols), 1.0);
  if (stats_ != nullptr) ++stats_->devex_resets;
  // Entering-column scratch: (row, coefficient) pairs gathered per
  // iteration from the row-wise storage.
  std::vector<int> col_rows;
  std::vector<double> col_vals;
  TabRow scratch;
  for (; iter < max_iterations; ++iter) {
    if (deadline_seconds_ > 0.0 && (iter & 31) == 0 &&
        watch_.ElapsedSeconds() > deadline_seconds_) {
      *iterations_used += iter;
      return LpStatus::kIterationLimit;
    }
    if (stats_ != nullptr &&
        iter % SolveLog::kFillSampleStride == 0) {
      stats_->fill_curve.emplace_back(base_iter + iter, StoredEntries());
    }
    const bool bland = degenerate_streak_ >= kBlandTrigger;
    if (stats_ != nullptr && bland) ++stats_->bland_iterations;
    // --- Pricing: devex (d_j^2 / w_j) cuts iteration counts on the highly
    // degenerate flow-structured LPs the schema optimizer emits; Bland's
    // rule takes over under prolonged stalling to guarantee termination.
    int enter = -1;
    double best_score = 0.0;
    for (int j = 0; j < ncols; ++j) {
      const VarStatus st = status_[static_cast<size_t>(j)];
      if (st == VarStatus::kBasic || IsFixed(j)) continue;
      const double dj = d_[static_cast<size_t>(j)];
      const bool eligible = (st == VarStatus::kAtLower && dj < -kDualTol) ||
                            (st == VarStatus::kAtUpper && dj > kDualTol);
      if (!eligible) continue;
      if (bland) {  // first eligible column
        enter = j;
        break;
      }
      const double score = dj * dj / devex_[static_cast<size_t>(j)];
      if (score > best_score) {
        best_score = score;
        enter = j;
      }
    }
    if (enter == -1) {
      *iterations_used += iter;
      return LpStatus::kOptimal;
    }

    const double dir =
        status_[static_cast<size_t>(enter)] == VarStatus::kAtLower ? 1.0 : -1.0;

    // --- Gather the entering column (one binary search per row). ---
    col_rows.clear();
    col_vals.clear();
    for (int i = 0; i < m; ++i) {
      const double alpha = rows_[static_cast<size_t>(i)].Coeff(enter);
      if (alpha != 0.0) {
        col_rows.push_back(i);
        col_vals.push_back(alpha);
      }
    }

    // --- Ratio test over the column's nonzeros only. ---
    double t_best = ub_[static_cast<size_t>(enter)] - lb_[static_cast<size_t>(enter)];
    int leave_pos = -1;   // position in col_rows; -1 => bound flip
    bool leave_at_upper = false;
    double best_pivot_mag = 0.0;
    for (size_t p = 0; p < col_rows.size(); ++p) {
      const int i = col_rows[p];
      const double alpha = col_vals[p];
      const double rate = dir * alpha;  // xb_i decreases at this rate
      if (std::abs(rate) <= kPivotTol) continue;
      const int k = basis_[static_cast<size_t>(i)];
      double limit;
      bool at_upper;
      if (rate > 0.0) {
        const double lbk = lb_[static_cast<size_t>(k)];
        if (lbk == -LpProblem::kInfinity) continue;
        limit = (xb_[static_cast<size_t>(i)] - lbk) / rate;
        at_upper = false;
      } else {
        const double ubk = ub_[static_cast<size_t>(k)];
        if (ubk == LpProblem::kInfinity) continue;
        limit = (xb_[static_cast<size_t>(i)] - ubk) / rate;
        at_upper = true;
      }
      if (limit < 0.0) limit = 0.0;  // guard tiny negative residuals
      const double mag = std::abs(alpha);
      const bool better =
          limit < t_best - 1e-10 ||
          (limit < t_best + 1e-10 && leave_pos >= 0 &&
           (bland ? basis_[static_cast<size_t>(i)] <
                        basis_[static_cast<size_t>(col_rows[static_cast<size_t>(
                            leave_pos)])]
                  : mag > best_pivot_mag));
      if (better) {
        t_best = limit;
        leave_pos = static_cast<int>(p);
        leave_at_upper = at_upper;
        best_pivot_mag = mag;
      }
    }

    if (t_best == LpProblem::kInfinity) {
      *iterations_used += iter;
      return LpStatus::kUnbounded;
    }
    degenerate_streak_ =
        (t_best <= kDegenerateStep) ? degenerate_streak_ + 1 : 0;
    if (stats_ != nullptr &&
        degenerate_streak_ > stats_->max_degenerate_streak) {
      stats_->max_degenerate_streak = degenerate_streak_;
    }

    // --- Apply the step to the affected basic values. ---
    if (t_best != 0.0) {
      for (size_t p = 0; p < col_rows.size(); ++p) {
        xb_[static_cast<size_t>(col_rows[p])] -= dir * col_vals[p] * t_best;
      }
    }

    if (leave_pos == -1) {
      if (stats_ != nullptr) ++stats_->bound_flips;
      // Bound flip: the entering variable runs to its opposite bound.
      status_[static_cast<size_t>(enter)] =
          status_[static_cast<size_t>(enter)] == VarStatus::kAtLower
              ? VarStatus::kAtUpper
              : VarStatus::kAtLower;
      continue;
    }

    // --- Pivot: entering becomes basic in leave_row. ---
    const int leave_row = col_rows[static_cast<size_t>(leave_pos)];
    const int leave_col = basis_[static_cast<size_t>(leave_row)];
    status_[static_cast<size_t>(leave_col)] =
        leave_at_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    const double enter_from =
        dir > 0 ? lb_[static_cast<size_t>(enter)] : ub_[static_cast<size_t>(enter)];
    basis_[static_cast<size_t>(leave_row)] = enter;
    status_[static_cast<size_t>(enter)] = VarStatus::kBasic;
    xb_[static_cast<size_t>(leave_row)] = enter_from + dir * t_best;

    // Normalize the pivot row, making its entering coefficient exactly 1.
    TabRow& prow = rows_[static_cast<size_t>(leave_row)];
    const double pivot = col_vals[static_cast<size_t>(leave_pos)];
    assert(std::abs(pivot) > kPivotTol);
    const double inv = 1.0 / pivot;
    if (prow.is_dense) {
      for (double& v : prow.full) v *= inv;
      prow.full[static_cast<size_t>(enter)] = 1.0;  // exact
    } else {
      size_t w = 0;
      for (size_t k = 0; k < prow.idx.size(); ++k) {
        const int j = prow.idx[k];
        const double v = j == enter ? 1.0 : prow.val[k] * inv;
        if (j != enter && v == 0.0) continue;
        prow.idx[w] = j;
        prow.val[w] = v;
        ++w;
      }
      prow.idx.resize(w);
      prow.val.resize(w);
    }

    // Eliminate the entering column from the other rows that carry it —
    // the sparse analogue of Gauss-Jordan, skipping every zero row.
    for (size_t p = 0; p < col_rows.size(); ++p) {
      const int i = col_rows[p];
      if (i == leave_row) continue;
      RowAxpy(&rows_[static_cast<size_t>(i)], -col_vals[p], prow, enter,
              ncols, &scratch);
      // Re-inserting the exact zero the merge removed is unnecessary: the
      // entering column is basic in leave_row only.
    }
    const double dfactor = d_[static_cast<size_t>(enter)];
    if (dfactor != 0.0) {
      if (prow.is_dense) {
        for (int j = 0; j < ncols; ++j) {
          d_[static_cast<size_t>(j)] -= dfactor * prow.full[static_cast<size_t>(j)];
        }
      } else {
        for (size_t k = 0; k < prow.idx.size(); ++k) {
          d_[static_cast<size_t>(prow.idx[k])] -= dfactor * prow.val[k];
        }
      }
      d_[static_cast<size_t>(enter)] = 0.0;
    }
    // Devex weight update against the (normalized) pivot row.
    const double w_enter = devex_[static_cast<size_t>(enter)];
    if (prow.is_dense) {
      for (int j = 0; j < ncols; ++j) {
        const double a = prow.full[static_cast<size_t>(j)];
        if (a == 0.0) continue;
        double& w = devex_[static_cast<size_t>(j)];
        const double candidate = a * a * w_enter;
        if (candidate > w) w = candidate;
      }
    } else {
      for (size_t k = 0; k < prow.idx.size(); ++k) {
        const double a = prow.val[k];
        double& w = devex_[static_cast<size_t>(prow.idx[k])];
        const double candidate = a * a * w_enter;
        if (candidate > w) w = candidate;
      }
    }
    devex_[static_cast<size_t>(leave_col)] =
        std::max(1.0, w_enter / std::max(pivot * pivot, 1e-12));
  }
  *iterations_used += iter;
  return LpStatus::kIterationLimit;
}

bool SparseSimplex::TryLoadBasis(const LpBasis& basis) {
  const int m = NumRows();
  const int ncols = NumCols();
  if (static_cast<int>(basis.status.size()) != ncols) return false;
  std::vector<int> basic_cols;
  basic_cols.reserve(static_cast<size_t>(m));
  for (int j = 0; j < ncols; ++j) {
    const uint8_t st = basis.status[static_cast<size_t>(j)];
    if (st == static_cast<uint8_t>(VarStatus::kBasic)) {
      basic_cols.push_back(j);
    } else if (st == static_cast<uint8_t>(VarStatus::kAtLower)) {
      if (lb_[static_cast<size_t>(j)] == -LpProblem::kInfinity) return false;
    } else if (st == static_cast<uint8_t>(VarStatus::kAtUpper)) {
      if (ub_[static_cast<size_t>(j)] == LpProblem::kInfinity) return false;
    } else {
      return false;
    }
  }
  if (static_cast<int>(basic_cols.size()) != m) return false;

  // The load pivots rows_/rhs_ in place; keep a copy to restore on failure.
  std::vector<TabRow> rows_backup = rows_;
  std::vector<double> rhs_backup = rhs_;

  status_.assign(static_cast<size_t>(ncols), VarStatus::kAtLower);
  for (int j = 0; j < ncols; ++j) {
    status_[static_cast<size_t>(j)] =
        static_cast<VarStatus>(basis.status[static_cast<size_t>(j)]);
  }

  // Gauss-Jordan: pivot each stated basic column into its own row so the
  // tableau again equals B⁻¹A. Deterministic: columns ascend, each picks
  // the unused row with the largest pivot magnitude.
  basis_.assign(static_cast<size_t>(m), -1);
  std::vector<char> row_used(static_cast<size_t>(m), 0);
  TabRow scratch;
  bool ok = true;
  for (const int col : basic_cols) {
    int best_row = -1;
    double best_mag = 0.0;
    for (int i = 0; i < m; ++i) {
      if (row_used[static_cast<size_t>(i)]) continue;
      const double a = std::abs(rows_[static_cast<size_t>(i)].Coeff(col));
      if (a > best_mag) {
        best_mag = a;
        best_row = i;
      }
    }
    if (best_mag <= kPivotTol) {  // singular under this basis
      ok = false;
      break;
    }
    TabRow& prow = rows_[static_cast<size_t>(best_row)];
    const double inv = 1.0 / prow.Coeff(col);
    if (prow.is_dense) {
      for (double& v : prow.full) v *= inv;
      prow.full[static_cast<size_t>(col)] = 1.0;  // exact
    } else {
      size_t w = 0;
      for (size_t k = 0; k < prow.idx.size(); ++k) {
        const int j = prow.idx[k];
        const double v = j == col ? 1.0 : prow.val[k] * inv;
        if (j != col && v == 0.0) continue;
        prow.idx[w] = j;
        prow.val[w] = v;
        ++w;
      }
      prow.idx.resize(w);
      prow.val.resize(w);
    }
    rhs_[static_cast<size_t>(best_row)] *= inv;
    for (int i = 0; i < m; ++i) {
      if (i == best_row) continue;
      const double factor = rows_[static_cast<size_t>(i)].Coeff(col);
      if (factor == 0.0) continue;
      RowAxpy(&rows_[static_cast<size_t>(i)], -factor, prow, col, NumCols(),
              &scratch);
      rhs_[static_cast<size_t>(i)] -= factor * rhs_[static_cast<size_t>(best_row)];
    }
    row_used[static_cast<size_t>(best_row)] = 1;
    basis_[static_cast<size_t>(best_row)] = col;
  }

  if (ok) {
    // Basic values from the transformed system: xb_i = rhs_i minus the
    // nonbasic columns resting at their bounds. Earlier basic columns are
    // exactly zero in other rows (RowAxpy cancels the skip column exactly),
    // but skip any basic entry defensively.
    xb_.assign(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m && ok; ++i) {
      const TabRow& row = rows_[static_cast<size_t>(i)];
      double v = rhs_[static_cast<size_t>(i)];
      auto subtract = [&](int j, double a) {
        if (status_[static_cast<size_t>(j)] == VarStatus::kBasic) return;
        const double bv = BoundValue(j);
        if (bv != 0.0) v -= a * bv;
      };
      if (row.is_dense) {
        for (size_t j = 0; j < row.full.size(); ++j) {
          if (row.full[j] != 0.0) subtract(static_cast<int>(j), row.full[j]);
        }
      } else {
        for (size_t k = 0; k < row.idx.size(); ++k) {
          subtract(row.idx[k], row.val[k]);
        }
      }
      const size_t k = static_cast<size_t>(basis_[static_cast<size_t>(i)]);
      if (v < lb_[k] - kPhase1Tol || v > ub_[k] + kPhase1Tol) {
        ok = false;  // primal infeasible under the current bounds
        break;
      }
      xb_[static_cast<size_t>(i)] = std::min(std::max(v, lb_[k]), ub_[k]);
    }
  }

  if (!ok) {
    rows_ = std::move(rows_backup);
    rhs_ = std::move(rhs_backup);
    return false;
  }
  return true;
}

LpResult SparseSimplex::Run(int max_iterations, double deadline_seconds,
                            const LpBasis* start_basis, LpBasis* final_basis,
                            bool want_duals) {
  deadline_seconds_ = deadline_seconds;
  watch_.Reset();
  const int m = NumRows();
  LpResult result;
  if (final_basis != nullptr) final_basis->clear();
  result.iterations = 0;

  int first_artificial = NumCols();
  row_sign_.assign(static_cast<size_t>(m), 1.0);
  artificial_of_row_.assign(static_cast<size_t>(m), -1);
  const bool hot = start_basis != nullptr && !start_basis->empty() &&
                   TryLoadBasis(*start_basis);
  result.hot_started = hot;
  if (stats_ != nullptr && hot) stats_->fill_start = StoredEntries();

  if (!hot) {
    // Initial point: every column rests at a finite bound.
    status_.assign(static_cast<size_t>(NumCols()), VarStatus::kAtLower);
    for (int j = 0; j < NumCols(); ++j) {
      if (lb_[static_cast<size_t>(j)] == -LpProblem::kInfinity) {
        assert(ub_[static_cast<size_t>(j)] != LpProblem::kInfinity &&
               "free variables are not supported");
        status_[static_cast<size_t>(j)] = VarStatus::kAtUpper;
      }
    }

    // Residual per row given the initial nonbasic values; artificial columns
    // absorb it so the artificial basis starts feasible.
    std::vector<double> residual(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      double r = rhs_[static_cast<size_t>(i)];
      // Rows are still CSR here: densification only happens during Iterate.
      const TabRow& row = rows_[static_cast<size_t>(i)];
      for (size_t k = 0; k < row.idx.size(); ++k) {
        const double v = BoundValue(row.idx[k]);
        if (v != 0.0) r -= row.val[k] * v;
      }
      residual[static_cast<size_t>(i)] = r;
    }

    // Negate rows with negative residual so that every artificial can enter
    // with coefficient +1 and the initial basis matrix is the identity
    // (tableau rows must equal B⁻¹A for the reduced-cost formula).
    for (int i = 0; i < m; ++i) {
      if (residual[static_cast<size_t>(i)] < 0.0) {
        for (double& v : rows_[static_cast<size_t>(i)].val) v = -v;
        rhs_[static_cast<size_t>(i)] = -rhs_[static_cast<size_t>(i)];
        residual[static_cast<size_t>(i)] = -residual[static_cast<size_t>(i)];
        row_sign_[static_cast<size_t>(i)] = -1.0;
      }
    }

    // Crash basis: a row whose own slack carries coefficient +1 after the
    // sign normalization can start with that slack basic at the residual
    // (slacks live in [0, ∞), and the residual is now nonnegative) — no
    // artificial, no phase-1 work. NoSE's BIPs are dominated by ≤ linking
    // rows (x_e ≤ δ) whose residual at the all-lower starting point is zero,
    // so this removes the bulk of phase 1; artificials remain only for
    // equality rows and for inequalities pointing away from their slack.
    first_artificial = NumCols();
    basis_.resize(static_cast<size_t>(m));
    xb_.resize(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      const int slack = slack_col_[static_cast<size_t>(i)];
      if (slack >= 0 &&
          rows_[static_cast<size_t>(i)].Coeff(slack) == 1.0) {
        status_[static_cast<size_t>(slack)] = VarStatus::kBasic;
        basis_[static_cast<size_t>(i)] = slack;
        xb_[static_cast<size_t>(i)] = residual[static_cast<size_t>(i)];
      } else {
        basis_[static_cast<size_t>(i)] = -1;  // artificial assigned below
      }
    }
    for (int i = 0; i < m; ++i) {
      if (basis_[static_cast<size_t>(i)] != -1) continue;
      const int art = AddColumn(0.0, LpProblem::kInfinity, 0.0);
      status_.push_back(VarStatus::kBasic);
      // Artificial indices exceed every structural/slack index, so appending
      // keeps the row sorted.
      rows_[static_cast<size_t>(i)].idx.push_back(art);
      rows_[static_cast<size_t>(i)].val.push_back(1.0);
      basis_[static_cast<size_t>(i)] = art;
      xb_[static_cast<size_t>(i)] = residual[static_cast<size_t>(i)];
      artificial_of_row_[static_cast<size_t>(i)] = art;
    }

    // --- Phase 1: minimize the sum of artificials. ---
    std::vector<double> phase1_cost(static_cast<size_t>(NumCols()), 0.0);
    for (int j = first_artificial; j < NumCols(); ++j) {
      phase1_cost[static_cast<size_t>(j)] = 1.0;
    }
    if (stats_ != nullptr) stats_->fill_start = StoredEntries();
    ComputeReducedCosts(phase1_cost);
    LpStatus phase1 = Iterate(max_iterations, &result.iterations);
    if (stats_ != nullptr) stats_->phase1_iterations = result.iterations;
    if (phase1 == LpStatus::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      return result;
    }
    double infeasibility = 0.0;
    for (int i = 0; i < m; ++i) {
      if (basis_[static_cast<size_t>(i)] >= first_artificial) {
        infeasibility += xb_[static_cast<size_t>(i)];
      }
    }
    for (int j = first_artificial; j < NumCols(); ++j) {
      if (status_[static_cast<size_t>(j)] == VarStatus::kAtUpper) {
        infeasibility += std::abs(ub_[static_cast<size_t>(j)]);
      }
    }
    if (infeasibility > kPhase1Tol) {
      if (std::getenv("NOSE_LP_DEBUG") != nullptr) {
        std::fprintf(stderr, "[lp] phase-1 infeasibility %.3e (rows=%d)\n",
                     infeasibility, m);
      }
      result.status = LpStatus::kInfeasible;
      return result;
    }

    // Freeze artificials at zero for phase 2. Any still basic sit at 0 and
    // can only leave the basis degenerately, which is fine.
    for (int j = first_artificial; j < NumCols(); ++j) {
      ub_[static_cast<size_t>(j)] = 0.0;
      if (status_[static_cast<size_t>(j)] == VarStatus::kAtUpper) {
        status_[static_cast<size_t>(j)] = VarStatus::kAtLower;
      }
    }
  }

  // --- Phase 2: original objective. ---
  std::vector<double> phase2_cost = cost_;
  phase2_cost.resize(static_cast<size_t>(NumCols()), 0.0);
  ComputeReducedCosts(phase2_cost);
  LpStatus phase2 = Iterate(max_iterations, &result.iterations);
  if (phase2 == LpStatus::kIterationLimit ||
      phase2 == LpStatus::kUnbounded) {
    result.status = phase2;
    return result;
  }

  // Extract structural values and the objective.
  result.x.assign(static_cast<size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) {
    if (status_[static_cast<size_t>(j)] != VarStatus::kBasic) {
      result.x[static_cast<size_t>(j)] = BoundValue(j);
    }
  }
  for (int i = 0; i < m; ++i) {
    const int k = basis_[static_cast<size_t>(i)];
    if (k < n_) result.x[static_cast<size_t>(k)] = xb_[static_cast<size_t>(i)];
  }
  result.objective = 0.0;
  for (int j = 0; j < n_; ++j) {
    result.objective += cost_[static_cast<size_t>(j)] * result.x[static_cast<size_t>(j)];
  }
  result.status = LpStatus::kOptimal;

  // Dual extraction (cold solves only): at the phase-2 optimum the reduced
  // cost of a column with identity structure in row i reads off −y_i. A
  // row's artificial is exactly such a column; a row whose crash slack
  // seeded the basis has that slack at coefficient +1 after sign
  // normalization, so its reduced cost d = c_slack − y_i = −y_i as well.
  // Undo the phase-1 row negation via row_sign_. Basic columns carry d = 0,
  // giving y_i = 0 there — possibly weaker than the true dual, never wrong
  // for the checker, which only uses duals to assemble a safe bound. Hot
  // starts skip the crash entirely, so no identity columns are guaranteed
  // and duals stay empty.
  if (want_duals && !hot) {
    result.duals.assign(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      const int art = artificial_of_row_[static_cast<size_t>(i)];
      const int col = art >= 0 ? art : slack_col_[static_cast<size_t>(i)];
      const double yhat = -d_[static_cast<size_t>(col)];
      result.duals[static_cast<size_t>(i)] =
          row_sign_[static_cast<size_t>(i)] * yhat;
    }
  }

  // Export the optimal basis over structural + slack columns only. A basis
  // with an artificial still in it (degenerate, at value 0) cannot be
  // replayed against a fresh tableau, so it is simply not captured.
  if (final_basis != nullptr) {
    bool exportable = true;
    for (int i = 0; i < m; ++i) {
      if (basis_[static_cast<size_t>(i)] >= first_artificial) {
        exportable = false;
        break;
      }
    }
    if (exportable) {
      final_basis->status.resize(static_cast<size_t>(first_artificial));
      for (int j = 0; j < first_artificial; ++j) {
        final_basis->status[static_cast<size_t>(j)] =
            static_cast<uint8_t>(status_[static_cast<size_t>(j)]);
      }
    }
  }
  return result;
}

// ===========================================================================
// Factorized revised simplex (the default engine).
// ===========================================================================

/// LU-factorized bounded-variable two-phase revised primal simplex
/// (LpEngine::kFactorized). Same crash basis, phase structure, pricing
/// rule (devex with Bland fallback), and ratio test as the tableau
/// engines, but the basis inverse is a Markowitz sparse LU plus
/// product-form etas (solver/factorization.h) instead of an explicit B⁻¹A
/// tableau: the entering column arrives by FTRAN, the pivot row by BTRAN
/// plus one pass over the original columns, and fill stays near
/// nnz(basis) instead of growing toward m·n. The eta file collapses into
/// a fresh factorization on an update-count/fill trigger or whenever an
/// eta pivot is too small to apply stably. Hot starts additionally run a
/// bounded-variable dual simplex to repair the primal infeasibility a
/// branch-and-bound bound change leaves behind (the parent basis stays
/// dual feasible because only bounds changed), so a child node re-solves
/// in a handful of pivots. Duals come from one BTRAN at the optimum and
/// are available for hot-started solves too. One instance per Solve()
/// call; not reused.
class FactorizedSimplex {
 public:
  FactorizedSimplex(int num_structural, std::vector<double> lb,
                    std::vector<double> ub, std::vector<double> cost)
      : n_(num_structural),
        lb_(std::move(lb)),
        ub_(std::move(ub)),
        cost_(std::move(cost)) {}

  /// Appends an equality row a·x = rhs over all currently known columns
  /// (slack columns must have been added as variables by the caller).
  /// Same contract as SparseSimplex::AddEqualityRow.
  void AddEqualityRow(TabRow row, double rhs, int slack_col) {
    rows_.push_back(std::move(row));
    rhs_.push_back(rhs);
    slack_col_.push_back(slack_col);
  }

  int AddColumn(double lb, double ub, double cost) {
    lb_.push_back(lb);
    ub_.push_back(ub);
    cost_.push_back(cost);
    return static_cast<int>(cost_.size()) - 1;
  }

  LpResult Run(int max_iterations, double deadline_seconds,
               const LpBasis* start_basis, LpBasis* final_basis,
               bool want_duals);

  /// Telemetry sink for this solve, or null (the default) for none.
  void set_stats(LpSolveStats* stats) { stats_ = stats; }
  int NumTableauCols() const { return NumCols(); }
  /// Stored factor entries (LU + eta file) — the fill measure the
  /// telemetry samples in place of tableau nonzeros.
  uint64_t StoredEntries() const { return fact_.stored_entries(); }
  int NumDenseRows() const { return 0; }
  int refactorizations() const { return refactorizations_; }
  int ft_updates() const { return ft_updates_; }
  /// L+U nonzeros of the most recent base factorization.
  uint64_t FactorFill() const { return fact_.lu_entries(); }

 private:
  int NumCols() const { return static_cast<int>(cost_.size()); }
  int NumRows() const { return static_cast<int>(rows_.size()); }

  double BoundValue(int j) const {
    return status_[static_cast<size_t>(j)] == VarStatus::kAtUpper
               ? ub_[static_cast<size_t>(j)]
               : lb_[static_cast<size_t>(j)];
  }

  bool IsFixed(int j) const {
    return ub_[static_cast<size_t>(j)] - lb_[static_cast<size_t>(j)] < 1e-12;
  }

  /// Scatters the CSR rows (including any appended artificial entries)
  /// into column-major storage sized to the current column count.
  void BuildColumns() {
    cols_.assign(static_cast<size_t>(NumCols()), SparseColumn{});
    for (int i = 0; i < NumRows(); ++i) {
      const TabRow& row = rows_[static_cast<size_t>(i)];
      for (size_t k = 0; k < row.idx.size(); ++k) {
        SparseColumn& col = cols_[static_cast<size_t>(row.idx[k])];
        col.rows.push_back(i);
        col.vals.push_back(row.val[k]);
      }
    }
  }

  /// Factorizes the current basis into a fresh object, swapping it in only
  /// on success so the previous factors stay usable as a fallback.
  bool FactorizeBasis() {
    const int m = NumRows();
    std::vector<const SparseColumn*> ptrs;
    ptrs.reserve(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      ptrs.push_back(&cols_[static_cast<size_t>(basis_[static_cast<size_t>(i)])]);
    }
    BasisFactorization fresh;
    if (!fresh.Factorize(m, ptrs)) return false;
    fact_ = std::move(fresh);
    ++refactorizations_;
    return true;
  }

  /// xb := B⁻¹(b − N·x_N), recomputed from scratch (used after every
  /// refactorization to shed incremental drift).
  void ComputeXb() {
    std::vector<double> r = rhs_;
    for (int j = 0; j < NumCols(); ++j) {
      if (status_[static_cast<size_t>(j)] == VarStatus::kBasic) continue;
      const double bv = BoundValue(j);
      if (bv == 0.0) continue;
      const SparseColumn& col = cols_[static_cast<size_t>(j)];
      for (size_t k = 0; k < col.rows.size(); ++k) {
        r[static_cast<size_t>(col.rows[k])] -= col.vals[k] * bv;
      }
    }
    fact_.Ftran(&r);
    xb_ = std::move(r);
  }

  /// d := c − AᵀB⁻ᵀc_B, recomputed from scratch via one BTRAN.
  void ComputeReducedCosts(const std::vector<double>& phase_cost) {
    const int m = NumRows();
    std::vector<double> y(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      y[static_cast<size_t>(i)] =
          phase_cost[static_cast<size_t>(basis_[static_cast<size_t>(i)])];
    }
    fact_.Btran(&y);
    d_.assign(phase_cost.begin(), phase_cost.end());
    for (int j = 0; j < NumCols(); ++j) {
      const SparseColumn& col = cols_[static_cast<size_t>(j)];
      double acc = 0.0;
      for (size_t k = 0; k < col.rows.size(); ++k) {
        const double yi = y[static_cast<size_t>(col.rows[k])];
        if (yi != 0.0) acc += col.vals[k] * yi;
      }
      d_[static_cast<size_t>(j)] -= acc;
    }
    y_ = std::move(y);
  }

  /// Fills rowvals_ with row `slot` of B⁻¹A (BTRAN of a unit vector, then
  /// one dot product per original column). O(nnz(A)).
  void ComputePivotRow(int slot) {
    const int m = NumRows();
    rho_.assign(static_cast<size_t>(m), 0.0);
    rho_[static_cast<size_t>(slot)] = 1.0;
    fact_.Btran(&rho_);
    rowvals_.assign(static_cast<size_t>(NumCols()), 0.0);
    for (int j = 0; j < NumCols(); ++j) {
      const SparseColumn& col = cols_[static_cast<size_t>(j)];
      double acc = 0.0;
      for (size_t k = 0; k < col.rows.size(); ++k) {
        const double ri = rho_[static_cast<size_t>(col.rows[k])];
        if (ri != 0.0) acc += col.vals[k] * ri;
      }
      rowvals_[static_cast<size_t>(j)] = acc;
    }
  }

  /// Replaces the basis column in `slot` with `enter` in the factorization:
  /// product-form eta when stable, otherwise a refactorization (which also
  /// re-syncs xb_ and d_ against `phase_cost` to shed drift). basis_ /
  /// status_ must already reflect the new basis. `ftran_column` is the
  /// entering column's FTRAN image under the OLD basis.
  void UpdateFactors(int slot, const std::vector<double>& ftran_column,
                     const std::vector<double>& phase_cost) {
    const bool appended = fact_.Update(slot, ftran_column);
    if (appended) ++ft_updates_;
    if (!appended || fact_.NeedsRefactorization()) {
      if (FactorizeBasis()) {
        ComputeXb();
        ComputeReducedCosts(phase_cost);
      } else if (!appended) {
        // Refactorization failed numerically; the old factors plus a
        // forced eta still represent the new basis exactly.
        fact_.ForceUpdate(slot, ftran_column);
        ++ft_updates_;
      }
    }
  }

  /// Loads a caller-provided basis: factorize, compute xb, and — when a
  /// bound change left basic variables outside their bounds — run the
  /// dual-simplex repair. Returns false when the basis cannot be used
  /// (wrong shape, singular, or repair gave up); the cold path then
  /// rebuilds every piece of state from scratch.
  bool TryLoadBasis(const LpBasis& basis, int* iterations_used);

  /// Bounded-variable dual simplex on the loaded basis: picks the most
  /// violated basic, prices its BTRAN row, and pivots by the dual ratio
  /// test until primal feasible. Returns false to fall back to a cold
  /// start (no eligible entering column — the cold phase 1 then delivers
  /// the trusted infeasibility verdict — or an iteration/numerics cap).
  bool DualRepair(int* iterations_used);

  /// Primal simplex iterations for the current phase (see
  /// SparseSimplex::Iterate — same pricing, ratio test, and telemetry).
  LpStatus Iterate(int max_iterations, int* iterations_used,
                   const std::vector<double>& phase_cost);

  double deadline_seconds_ = 0.0;
  Stopwatch watch_;

  int n_;  // structural variable count (prefix of the columns)
  std::vector<double> lb_, ub_, cost_;
  std::vector<TabRow> rows_;  // CSR input rows (residuals, sign flips)
  std::vector<double> rhs_;
  std::vector<int> slack_col_;
  std::vector<double> row_sign_;
  std::vector<int> artificial_of_row_;
  std::vector<SparseColumn> cols_;  // CSC incl. slack/artificial columns
  std::vector<VarStatus> status_;
  std::vector<int> basis_;  // slot -> basic column
  std::vector<double> xb_;  // slot -> value of the basic variable
  std::vector<double> d_;
  std::vector<double> y_;  // row duals from the last ComputeReducedCosts
  std::vector<double> devex_;
  std::vector<double> alpha_;    // FTRAN scratch (entering column)
  std::vector<double> rho_;      // BTRAN scratch (pivot row)
  std::vector<double> rowvals_;  // pivot row over all columns
  BasisFactorization fact_;
  int first_artificial_ = 0;
  int degenerate_streak_ = 0;
  int refactorizations_ = 0;
  int ft_updates_ = 0;
  LpSolveStats* stats_ = nullptr;
};

LpStatus FactorizedSimplex::Iterate(int max_iterations, int* iterations_used,
                                    const std::vector<double>& phase_cost) {
  const int m = NumRows();
  const int ncols = NumCols();
  const int base_iter = *iterations_used;  // cumulative across phases
  int iter = 0;
  degenerate_streak_ = 0;
  devex_.assign(static_cast<size_t>(ncols), 1.0);
  if (stats_ != nullptr) ++stats_->devex_resets;
  std::vector<int> col_rows;
  std::vector<double> col_vals;
  bool resynced_at_optimum = false;
  for (; iter < max_iterations; ++iter) {
    if (deadline_seconds_ > 0.0 && (iter & 31) == 0 &&
        watch_.ElapsedSeconds() > deadline_seconds_) {
      *iterations_used += iter;
      return LpStatus::kIterationLimit;
    }
    if (stats_ != nullptr && iter % SolveLog::kFillSampleStride == 0) {
      stats_->fill_curve.emplace_back(base_iter + iter,
                                      fact_.stored_entries());
    }
    const bool bland = degenerate_streak_ >= kBlandTrigger;
    if (stats_ != nullptr && bland) ++stats_->bland_iterations;
    // --- Pricing: devex (d_j^2 / w_j); Bland's rule under stalling. ---
    // `fallback` records the eligible column with the largest |d_j|
    // independent of the devex score: a long run of near-zero pivots can
    // inflate weights until every score underflows past best_score's 0
    // starting point, and an eligible column must never be invisible to
    // pricing — that is how false optima (and false phase-1
    // infeasibilities) happen.
    int enter = -1;
    int fallback = -1;
    double best_score = 0.0;
    double best_fallback = 0.0;
    for (int j = 0; j < ncols; ++j) {
      const VarStatus st = status_[static_cast<size_t>(j)];
      if (st == VarStatus::kBasic || IsFixed(j)) continue;
      const double dj = d_[static_cast<size_t>(j)];
      const bool eligible = (st == VarStatus::kAtLower && dj < -kDualTol) ||
                            (st == VarStatus::kAtUpper && dj > kDualTol);
      if (!eligible) continue;
      if (bland) {  // first eligible column
        enter = j;
        break;
      }
      if (std::abs(dj) > best_fallback) {
        best_fallback = std::abs(dj);
        fallback = j;
      }
      const double score = dj * dj / devex_[static_cast<size_t>(j)];
      if (score > best_score) {
        best_score = score;
        enter = j;
      }
    }
    if (enter == -1 && fallback >= 0) enter = fallback;
    if (enter == -1) {
      // The incrementally updated d_ (and xb_) accumulate rounding drift
      // between refactorizations — unlike the tableau engines, whose
      // reduced costs stay consistent with the tableau they came from. An
      // apparent optimum is only trusted after a resync: refactorize,
      // recompute both from scratch, and re-price. If pricing still finds
      // nothing against exact reduced costs, the optimum is real.
      if (!resynced_at_optimum) {
        resynced_at_optimum = true;
        if (FactorizeBasis()) {
          ComputeXb();
          ComputeReducedCosts(phase_cost);
          continue;
        }
      }
      *iterations_used += iter;
      return LpStatus::kOptimal;
    }
    resynced_at_optimum = false;

    const double dir =
        status_[static_cast<size_t>(enter)] == VarStatus::kAtLower ? 1.0 : -1.0;

    // --- Entering column: FTRAN of the original column. ---
    alpha_.assign(static_cast<size_t>(m), 0.0);
    {
      const SparseColumn& col = cols_[static_cast<size_t>(enter)];
      for (size_t k = 0; k < col.rows.size(); ++k) {
        alpha_[static_cast<size_t>(col.rows[k])] = col.vals[k];
      }
    }
    fact_.Ftran(&alpha_);
    col_rows.clear();
    col_vals.clear();
    for (int i = 0; i < m; ++i) {
      const double a = alpha_[static_cast<size_t>(i)];
      if (a != 0.0) {
        col_rows.push_back(i);
        col_vals.push_back(a);
      }
    }

    // --- Ratio test over the column's nonzeros only. ---
    double t_best = ub_[static_cast<size_t>(enter)] - lb_[static_cast<size_t>(enter)];
    int leave_pos = -1;   // position in col_rows; -1 => bound flip
    bool leave_at_upper = false;
    double best_pivot_mag = 0.0;
    for (size_t p = 0; p < col_rows.size(); ++p) {
      const int i = col_rows[p];
      const double alpha = col_vals[p];
      const double rate = dir * alpha;  // xb_i decreases at this rate
      if (std::abs(rate) <= kPivotTol) continue;
      const int k = basis_[static_cast<size_t>(i)];
      double limit;
      bool at_upper;
      if (rate > 0.0) {
        const double lbk = lb_[static_cast<size_t>(k)];
        if (lbk == -LpProblem::kInfinity) continue;
        limit = (xb_[static_cast<size_t>(i)] - lbk) / rate;
        at_upper = false;
      } else {
        const double ubk = ub_[static_cast<size_t>(k)];
        if (ubk == LpProblem::kInfinity) continue;
        limit = (xb_[static_cast<size_t>(i)] - ubk) / rate;
        at_upper = true;
      }
      if (limit < 0.0) limit = 0.0;  // guard tiny negative residuals
      const double mag = std::abs(alpha);
      const bool better =
          limit < t_best - 1e-10 ||
          (limit < t_best + 1e-10 && leave_pos >= 0 &&
           (bland ? basis_[static_cast<size_t>(i)] <
                        basis_[static_cast<size_t>(col_rows[static_cast<size_t>(
                            leave_pos)])]
                  : mag > best_pivot_mag));
      if (better) {
        t_best = limit;
        leave_pos = static_cast<int>(p);
        leave_at_upper = at_upper;
        best_pivot_mag = mag;
      }
    }

    if (t_best == LpProblem::kInfinity) {
      *iterations_used += iter;
      return LpStatus::kUnbounded;
    }
    degenerate_streak_ =
        (t_best <= kDegenerateStep) ? degenerate_streak_ + 1 : 0;
    if (stats_ != nullptr &&
        degenerate_streak_ > stats_->max_degenerate_streak) {
      stats_->max_degenerate_streak = degenerate_streak_;
    }

    // --- Apply the step to the affected basic values. ---
    if (t_best != 0.0) {
      for (size_t p = 0; p < col_rows.size(); ++p) {
        xb_[static_cast<size_t>(col_rows[p])] -= dir * col_vals[p] * t_best;
      }
    }

    if (leave_pos == -1) {
      if (stats_ != nullptr) ++stats_->bound_flips;
      // Bound flip: the entering variable runs to its opposite bound.
      status_[static_cast<size_t>(enter)] =
          status_[static_cast<size_t>(enter)] == VarStatus::kAtLower
              ? VarStatus::kAtUpper
              : VarStatus::kAtLower;
      continue;
    }

    // --- Pivot: entering becomes basic in leave_row. ---
    const int leave_row = col_rows[static_cast<size_t>(leave_pos)];
    const int leave_col = basis_[static_cast<size_t>(leave_row)];
    const double pivot = col_vals[static_cast<size_t>(leave_pos)];
    assert(std::abs(pivot) > kPivotTol);

    // Pivot row of B⁻¹A under the OUTGOING basis, for the reduced-cost and
    // devex updates (the tableau engines read it off the stored row).
    ComputePivotRow(leave_row);

    status_[static_cast<size_t>(leave_col)] =
        leave_at_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    const double enter_from =
        dir > 0 ? lb_[static_cast<size_t>(enter)] : ub_[static_cast<size_t>(enter)];
    basis_[static_cast<size_t>(leave_row)] = enter;
    status_[static_cast<size_t>(enter)] = VarStatus::kBasic;
    xb_[static_cast<size_t>(leave_row)] = enter_from + dir * t_best;

    const double inv = 1.0 / pivot;
    const double dfactor = d_[static_cast<size_t>(enter)];
    if (dfactor != 0.0) {
      for (int j = 0; j < ncols; ++j) {
        const double a = rowvals_[static_cast<size_t>(j)];
        if (a != 0.0) d_[static_cast<size_t>(j)] -= dfactor * (a * inv);
      }
      d_[static_cast<size_t>(enter)] = 0.0;
    }
    // Devex weight update against the (normalized) pivot row. Weights are
    // clamped: long runs of tiny pivots otherwise inflate them geometrically
    // until d_j^2 / w_j underflows to zero for every column and pricing goes
    // blind (the tableau engines never accumulate enough degenerate pivots
    // for this, but the factorized engine can).
    constexpr double kDevexMax = 1e12;
    const double w_enter = devex_[static_cast<size_t>(enter)];
    for (int j = 0; j < ncols; ++j) {
      const double a = rowvals_[static_cast<size_t>(j)];
      if (a == 0.0) continue;
      const double an = a * inv;
      double& w = devex_[static_cast<size_t>(j)];
      const double candidate = std::min(kDevexMax, an * an * w_enter);
      if (candidate > w) w = candidate;
    }
    devex_[static_cast<size_t>(leave_col)] = std::min(
        kDevexMax, std::max(1.0, w_enter / std::max(pivot * pivot, 1e-12)));

    UpdateFactors(leave_row, alpha_, phase_cost);
  }
  *iterations_used += iter;
  return LpStatus::kIterationLimit;
}

bool FactorizedSimplex::DualRepair(int* iterations_used) {
  const int m = NumRows();
  const int ncols = NumCols();
  // The repair runs before any artificials exist, so the phase-2 cost is
  // just cost_ — and because only bounds changed since the basis was
  // optimal, d_ starts dual feasible (within tolerances).
  ComputeReducedCosts(cost_);
  const int limit = 2 * m + 100;
  for (int iter = 0; iter < limit; ++iter) {
    if (deadline_seconds_ > 0.0 && (iter & 31) == 0 &&
        watch_.ElapsedSeconds() > deadline_seconds_) {
      return false;
    }
    // --- Leaving variable: the most violated basic (lowest slot on tie).
    int leave_row = -1;
    bool to_upper = false;
    double worst = kPhase1Tol;
    for (int i = 0; i < m; ++i) {
      const int k = basis_[static_cast<size_t>(i)];
      const double v = xb_[static_cast<size_t>(i)];
      const double above = v - ub_[static_cast<size_t>(k)];
      const double below = lb_[static_cast<size_t>(k)] - v;
      if (above > worst) {
        worst = above;
        leave_row = i;
        to_upper = true;
      }
      if (below > worst) {
        worst = below;
        leave_row = i;
        to_upper = false;
      }
    }
    if (leave_row < 0) return true;  // primal feasible

    const int leave_col = basis_[static_cast<size_t>(leave_row)];
    ComputePivotRow(leave_row);

    // --- Dual ratio test: entering column whose sign moves the leaving
    // basic toward its violated bound, minimizing |d_j| / |a_rj| so the
    // remaining reduced costs keep their optimality signs.
    int enter = -1;
    double best_ratio = 0.0;
    double best_mag = 0.0;
    for (int j = 0; j < ncols; ++j) {
      const VarStatus st = status_[static_cast<size_t>(j)];
      if (st == VarStatus::kBasic || IsFixed(j)) continue;
      const double a = rowvals_[static_cast<size_t>(j)];
      if (std::abs(a) <= kPivotTol) continue;
      const bool at_lower = st == VarStatus::kAtLower;
      // Δx_j = (xb_r − bound) / a_rj must respect j's movable direction.
      const bool eligible = to_upper ? (at_lower ? a > 0.0 : a < 0.0)
                                     : (at_lower ? a < 0.0 : a > 0.0);
      if (!eligible) continue;
      const double dj = d_[static_cast<size_t>(j)];
      // Clamp tolerance-level dual infeasibility to zero.
      const double feas = std::max(at_lower ? dj : -dj, 0.0);
      const double mag = std::abs(a);
      const double ratio = feas / mag;
      if (enter < 0 || ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && mag > best_mag)) {
        enter = j;
        best_ratio = ratio;
        best_mag = mag;
      }
    }
    if (enter < 0) {
      // Dual unbounded — the subproblem is primal infeasible. Fall back to
      // the cold start for the trusted phase-1 verdict rather than
      // declaring infeasibility off fresh repair code.
      return false;
    }

    // --- Pivot. ---
    alpha_.assign(static_cast<size_t>(m), 0.0);
    {
      const SparseColumn& col = cols_[static_cast<size_t>(enter)];
      for (size_t k = 0; k < col.rows.size(); ++k) {
        alpha_[static_cast<size_t>(col.rows[k])] = col.vals[k];
      }
    }
    fact_.Ftran(&alpha_);
    const double pivot = alpha_[static_cast<size_t>(leave_row)];
    if (std::abs(pivot) <= kPivotTol) return false;  // numerics disagree

    const double bound_k = to_upper ? ub_[static_cast<size_t>(leave_col)]
                                    : lb_[static_cast<size_t>(leave_col)];
    const double dx = (xb_[static_cast<size_t>(leave_row)] - bound_k) / pivot;
    for (int i = 0; i < m; ++i) {
      const double a = alpha_[static_cast<size_t>(i)];
      if (a != 0.0) xb_[static_cast<size_t>(i)] -= a * dx;
    }
    const double enter_from = BoundValue(enter);
    status_[static_cast<size_t>(leave_col)] =
        to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    basis_[static_cast<size_t>(leave_row)] = enter;
    status_[static_cast<size_t>(enter)] = VarStatus::kBasic;
    xb_[static_cast<size_t>(leave_row)] = enter_from + dx;

    const double theta = d_[static_cast<size_t>(enter)] /
                         rowvals_[static_cast<size_t>(enter)];
    if (theta != 0.0) {
      for (int j = 0; j < ncols; ++j) {
        const double a = rowvals_[static_cast<size_t>(j)];
        if (a != 0.0) d_[static_cast<size_t>(j)] -= theta * a;
      }
    }
    d_[static_cast<size_t>(leave_col)] = -theta;
    d_[static_cast<size_t>(enter)] = 0.0;

    UpdateFactors(leave_row, alpha_, cost_);
    ++(*iterations_used);
  }
  return false;  // repair did not converge; cold start decides
}

bool FactorizedSimplex::TryLoadBasis(const LpBasis& basis,
                                     int* iterations_used) {
  const int m = NumRows();
  const int ncols = NumCols();
  if (static_cast<int>(basis.status.size()) != ncols) return false;
  std::vector<int> basic_cols;
  basic_cols.reserve(static_cast<size_t>(m));
  for (int j = 0; j < ncols; ++j) {
    const uint8_t st = basis.status[static_cast<size_t>(j)];
    if (st == static_cast<uint8_t>(VarStatus::kBasic)) {
      basic_cols.push_back(j);
    } else if (st == static_cast<uint8_t>(VarStatus::kAtLower)) {
      if (lb_[static_cast<size_t>(j)] == -LpProblem::kInfinity) return false;
    } else if (st == static_cast<uint8_t>(VarStatus::kAtUpper)) {
      if (ub_[static_cast<size_t>(j)] == LpProblem::kInfinity) return false;
    } else {
      return false;
    }
  }
  if (static_cast<int>(basic_cols.size()) != m) return false;

  status_.assign(static_cast<size_t>(ncols), VarStatus::kAtLower);
  for (int j = 0; j < ncols; ++j) {
    status_[static_cast<size_t>(j)] =
        static_cast<VarStatus>(basis.status[static_cast<size_t>(j)]);
  }
  basis_ = std::move(basic_cols);
  if (!FactorizeBasis()) return false;  // singular under this basis
  ComputeXb();

  bool feasible = true;
  for (int i = 0; i < m; ++i) {
    const size_t k = static_cast<size_t>(basis_[static_cast<size_t>(i)]);
    const double v = xb_[static_cast<size_t>(i)];
    if (v < lb_[k] - kPhase1Tol || v > ub_[k] + kPhase1Tol) {
      feasible = false;
      break;
    }
  }
  if (!feasible) feasible = DualRepair(iterations_used);
  if (!feasible) return false;

  for (int i = 0; i < m; ++i) {
    const size_t k = static_cast<size_t>(basis_[static_cast<size_t>(i)]);
    xb_[static_cast<size_t>(i)] =
        std::min(std::max(xb_[static_cast<size_t>(i)], lb_[k]), ub_[k]);
  }
  return true;
}

LpResult FactorizedSimplex::Run(int max_iterations, double deadline_seconds,
                                const LpBasis* start_basis,
                                LpBasis* final_basis, bool want_duals) {
  deadline_seconds_ = deadline_seconds;
  watch_.Reset();
  const int m = NumRows();
  LpResult result;
  if (final_basis != nullptr) final_basis->clear();
  result.iterations = 0;

  first_artificial_ = NumCols();
  row_sign_.assign(static_cast<size_t>(m), 1.0);
  artificial_of_row_.assign(static_cast<size_t>(m), -1);
  bool hot = false;
  if (start_basis != nullptr && !start_basis->empty()) {
    BuildColumns();
    hot = TryLoadBasis(*start_basis, &result.iterations);
  }
  result.hot_started = hot;
  if (stats_ != nullptr && hot) stats_->fill_start = fact_.stored_entries();

  if (!hot) {
    // Initial point: every column rests at a finite bound.
    status_.assign(static_cast<size_t>(NumCols()), VarStatus::kAtLower);
    for (int j = 0; j < NumCols(); ++j) {
      if (lb_[static_cast<size_t>(j)] == -LpProblem::kInfinity) {
        assert(ub_[static_cast<size_t>(j)] != LpProblem::kInfinity &&
               "free variables are not supported");
        status_[static_cast<size_t>(j)] = VarStatus::kAtUpper;
      }
    }

    // Residual per row given the initial nonbasic values.
    std::vector<double> residual(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      double r = rhs_[static_cast<size_t>(i)];
      const TabRow& row = rows_[static_cast<size_t>(i)];
      for (size_t k = 0; k < row.idx.size(); ++k) {
        const double v = BoundValue(row.idx[k]);
        if (v != 0.0) r -= row.val[k] * v;
      }
      residual[static_cast<size_t>(i)] = r;
    }

    // Negate rows with negative residual so every artificial can enter
    // with coefficient +1 (same normalization as the tableau engines).
    for (int i = 0; i < m; ++i) {
      if (residual[static_cast<size_t>(i)] < 0.0) {
        for (double& v : rows_[static_cast<size_t>(i)].val) v = -v;
        rhs_[static_cast<size_t>(i)] = -rhs_[static_cast<size_t>(i)];
        residual[static_cast<size_t>(i)] = -residual[static_cast<size_t>(i)];
        row_sign_[static_cast<size_t>(i)] = -1.0;
      }
    }

    // Crash basis: slacks with coefficient +1 after normalization start
    // basic at the residual; artificials cover the remaining rows.
    first_artificial_ = NumCols();
    basis_.assign(static_cast<size_t>(m), -1);
    xb_.assign(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      const int slack = slack_col_[static_cast<size_t>(i)];
      if (slack >= 0 && rows_[static_cast<size_t>(i)].Coeff(slack) == 1.0) {
        status_[static_cast<size_t>(slack)] = VarStatus::kBasic;
        basis_[static_cast<size_t>(i)] = slack;
        xb_[static_cast<size_t>(i)] = residual[static_cast<size_t>(i)];
      }
    }
    for (int i = 0; i < m; ++i) {
      if (basis_[static_cast<size_t>(i)] != -1) continue;
      const int art = AddColumn(0.0, LpProblem::kInfinity, 0.0);
      status_.push_back(VarStatus::kBasic);
      rows_[static_cast<size_t>(i)].idx.push_back(art);
      rows_[static_cast<size_t>(i)].val.push_back(1.0);
      basis_[static_cast<size_t>(i)] = art;
      xb_[static_cast<size_t>(i)] = residual[static_cast<size_t>(i)];
      artificial_of_row_[static_cast<size_t>(i)] = art;
    }
    BuildColumns();
    // The crash basis is all unit columns (slacks at +1, artificials at
    // +1), so this factorization is trivially nonsingular.
    const bool factored = FactorizeBasis();
    assert(factored);
    (void)factored;
    if (stats_ != nullptr) stats_->fill_start = fact_.stored_entries();

    // --- Phase 1: minimize the sum of artificials. ---
    std::vector<double> phase1_cost(static_cast<size_t>(NumCols()), 0.0);
    for (int j = first_artificial_; j < NumCols(); ++j) {
      phase1_cost[static_cast<size_t>(j)] = 1.0;
    }
    ComputeReducedCosts(phase1_cost);
    LpStatus phase1 = Iterate(max_iterations, &result.iterations, phase1_cost);
    if (stats_ != nullptr) stats_->phase1_iterations = result.iterations;
    if (phase1 == LpStatus::kIterationLimit) {
      result.status = LpStatus::kIterationLimit;
      return result;
    }
    double infeasibility = 0.0;
    for (int i = 0; i < m; ++i) {
      if (basis_[static_cast<size_t>(i)] >= first_artificial_) {
        infeasibility += xb_[static_cast<size_t>(i)];
      }
    }
    for (int j = first_artificial_; j < NumCols(); ++j) {
      if (status_[static_cast<size_t>(j)] == VarStatus::kAtUpper) {
        infeasibility += std::abs(ub_[static_cast<size_t>(j)]);
      }
    }
    if (infeasibility > kPhase1Tol) {
      if (std::getenv("NOSE_LP_DEBUG") != nullptr) {
        std::fprintf(stderr, "[lp] phase-1 infeasibility %.3e (rows=%d)\n",
                     infeasibility, m);
      }
      result.status = LpStatus::kInfeasible;
      return result;
    }

    // Freeze artificials at zero for phase 2.
    for (int j = first_artificial_; j < NumCols(); ++j) {
      ub_[static_cast<size_t>(j)] = 0.0;
      if (status_[static_cast<size_t>(j)] == VarStatus::kAtUpper) {
        status_[static_cast<size_t>(j)] = VarStatus::kAtLower;
      }
    }
  }

  // --- Phase 2: original objective. ---
  std::vector<double> phase2_cost = cost_;
  phase2_cost.resize(static_cast<size_t>(NumCols()), 0.0);
  ComputeReducedCosts(phase2_cost);
  LpStatus phase2 = Iterate(max_iterations, &result.iterations, phase2_cost);
  if (phase2 == LpStatus::kIterationLimit || phase2 == LpStatus::kUnbounded) {
    result.status = phase2;
    return result;
  }

  // Extract structural values and the objective.
  result.x.assign(static_cast<size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) {
    if (status_[static_cast<size_t>(j)] != VarStatus::kBasic) {
      result.x[static_cast<size_t>(j)] = BoundValue(j);
    }
  }
  for (int i = 0; i < m; ++i) {
    const int k = basis_[static_cast<size_t>(i)];
    if (k < n_) result.x[static_cast<size_t>(k)] = xb_[static_cast<size_t>(i)];
  }
  result.objective = 0.0;
  for (int j = 0; j < n_; ++j) {
    result.objective += cost_[static_cast<size_t>(j)] * result.x[static_cast<size_t>(j)];
  }
  result.status = LpStatus::kOptimal;

  // Dual extraction: one BTRAN of the basic costs gives the row
  // multipliers directly — no identity columns needed, so hot-started
  // solves get duals too. Undo the phase-1 row negation via row_sign_
  // (all +1 on the hot path, which never normalizes).
  if (want_duals) {
    std::vector<double> y(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      y[static_cast<size_t>(i)] =
          phase2_cost[static_cast<size_t>(basis_[static_cast<size_t>(i)])];
    }
    fact_.Btran(&y);
    result.duals.assign(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      result.duals[static_cast<size_t>(i)] =
          row_sign_[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
    }
  }

  // Export the optimal basis over structural + slack columns only (same
  // contract as the sparse engine: never with an artificial still basic).
  if (final_basis != nullptr) {
    bool exportable = true;
    for (int i = 0; i < m; ++i) {
      if (basis_[static_cast<size_t>(i)] >= first_artificial_) {
        exportable = false;
        break;
      }
    }
    if (exportable) {
      final_basis->status.resize(static_cast<size_t>(first_artificial_));
      for (int j = 0; j < first_artificial_; ++j) {
        final_basis->status[static_cast<size_t>(j)] =
            static_cast<uint8_t>(status_[static_cast<size_t>(j)]);
      }
    }
  }
  return result;
}

// ===========================================================================
// Dense baseline engine (the original full-tableau implementation), kept
// for benchmark comparisons and CI divergence checks.
// ===========================================================================

/// Dense full-tableau bounded-variable primal simplex. One instance per
/// Solve() call; not reused.
class DenseTableau {
 public:
  DenseTableau(int num_structural, std::vector<double> lb,
               std::vector<double> ub, std::vector<double> cost)
      : n_(num_structural),
        lb_(std::move(lb)),
        ub_(std::move(ub)),
        cost_(std::move(cost)) {}

  /// Appends an equality row a·x = rhs over all currently known columns
  /// (slack columns must have been added as variables by the caller).
  void AddEqualityRow(std::vector<double> dense_row, double rhs) {
    matrix_.push_back(std::move(dense_row));
    rhs_.push_back(rhs);
  }

  int AddColumn(double lb, double ub, double cost) {
    lb_.push_back(lb);
    ub_.push_back(ub);
    cost_.push_back(cost);
    return static_cast<int>(cost_.size()) - 1;
  }

  LpResult Run(int max_iterations, double deadline_seconds,
               bool want_duals = false);

  /// Telemetry sink for this solve, or null for none (see SparseSimplex).
  void set_stats(LpSolveStats* stats) { stats_ = stats; }
  int NumTableauCols() const { return NumCols(); }
  /// A dense tableau stores every cell, so fill is constant m·ncols.
  uint64_t StoredEntries() const {
    return static_cast<uint64_t>(NumRows()) *
           static_cast<uint64_t>(NumCols());
  }
  int NumDenseRows() const { return NumRows(); }

 private:
  int NumCols() const { return static_cast<int>(cost_.size()); }
  int NumRows() const { return static_cast<int>(matrix_.size()); }

  double BoundValue(int j) const {
    return status_[static_cast<size_t>(j)] == VarStatus::kAtUpper
               ? ub_[static_cast<size_t>(j)]
               : lb_[static_cast<size_t>(j)];
  }

  bool IsFixed(int j) const {
    return ub_[static_cast<size_t>(j)] - lb_[static_cast<size_t>(j)] < 1e-12;
  }

  void ComputeReducedCosts(const std::vector<double>& phase_cost) {
    d_.assign(static_cast<size_t>(NumCols()), 0.0);
    for (int j = 0; j < NumCols(); ++j) {
      d_[static_cast<size_t>(j)] = phase_cost[static_cast<size_t>(j)];
    }
    for (int i = 0; i < NumRows(); ++i) {
      const double cb = phase_cost[static_cast<size_t>(basis_[static_cast<size_t>(i)])];
      if (cb == 0.0) continue;
      const std::vector<double>& row = matrix_[static_cast<size_t>(i)];
      for (int j = 0; j < NumCols(); ++j) {
        d_[static_cast<size_t>(j)] -= cb * row[static_cast<size_t>(j)];
      }
    }
  }

  /// Runs simplex iterations until optimality/unboundedness/limit for the
  /// current phase. Returns the LP status for this phase.
  LpStatus Iterate(int max_iterations, int* iterations_used);

  double deadline_seconds_ = 0.0;
  Stopwatch watch_;

  int n_;  // structural variable count (prefix of the columns)
  std::vector<double> lb_, ub_, cost_;
  std::vector<std::vector<double>> matrix_;  // m rows x NumCols()
  std::vector<double> rhs_;
  std::vector<VarStatus> status_;
  std::vector<int> basis_;    // per row: basic column
  std::vector<double> xb_;    // per row: value of the basic variable
  std::vector<double> d_;     // reduced costs for the active phase
  std::vector<double> devex_;  // devex reference weights (pricing)
  int degenerate_streak_ = 0;
  LpSolveStats* stats_ = nullptr;  // telemetry sink; null = disabled
};

LpStatus DenseTableau::Iterate(int max_iterations, int* iterations_used) {
  const int m = NumRows();
  const int ncols = NumCols();
  int iter = 0;
  degenerate_streak_ = 0;
  devex_.assign(static_cast<size_t>(ncols), 1.0);
  if (stats_ != nullptr) ++stats_->devex_resets;
  for (; iter < max_iterations; ++iter) {
    if (deadline_seconds_ > 0.0 && (iter & 31) == 0 &&
        watch_.ElapsedSeconds() > deadline_seconds_) {
      *iterations_used += iter;
      return LpStatus::kIterationLimit;
    }
    const bool bland = degenerate_streak_ >= kBlandTrigger;
    if (stats_ != nullptr && bland) ++stats_->bland_iterations;
    // --- Pricing: devex (d_j^2 / w_j); Bland's rule under stalling. ---
    int enter = -1;
    double best_score = 0.0;
    for (int j = 0; j < ncols; ++j) {
      const VarStatus st = status_[static_cast<size_t>(j)];
      if (st == VarStatus::kBasic || IsFixed(j)) continue;
      const double dj = d_[static_cast<size_t>(j)];
      const bool eligible = (st == VarStatus::kAtLower && dj < -kDualTol) ||
                            (st == VarStatus::kAtUpper && dj > kDualTol);
      if (!eligible) continue;
      if (bland) {  // first eligible column
        enter = j;
        break;
      }
      const double score = dj * dj / devex_[static_cast<size_t>(j)];
      if (score > best_score) {
        best_score = score;
        enter = j;
      }
    }
    if (enter == -1) {
      *iterations_used += iter;
      return LpStatus::kOptimal;
    }

    const double dir =
        status_[static_cast<size_t>(enter)] == VarStatus::kAtLower ? 1.0 : -1.0;

    // --- Ratio test. ---
    double t_best = ub_[static_cast<size_t>(enter)] - lb_[static_cast<size_t>(enter)];
    int leave_row = -1;   // -1 => bound flip
    bool leave_at_upper = false;
    double best_pivot_mag = 0.0;
    for (int i = 0; i < m; ++i) {
      const double alpha = matrix_[static_cast<size_t>(i)][static_cast<size_t>(enter)];
      const double rate = dir * alpha;  // xb_i decreases at this rate
      if (std::abs(rate) <= kPivotTol) continue;
      const int k = basis_[static_cast<size_t>(i)];
      double limit;
      bool at_upper;
      if (rate > 0.0) {
        const double lbk = lb_[static_cast<size_t>(k)];
        if (lbk == -LpProblem::kInfinity) continue;
        limit = (xb_[static_cast<size_t>(i)] - lbk) / rate;
        at_upper = false;
      } else {
        const double ubk = ub_[static_cast<size_t>(k)];
        if (ubk == LpProblem::kInfinity) continue;
        limit = (xb_[static_cast<size_t>(i)] - ubk) / rate;
        at_upper = true;
      }
      if (limit < 0.0) limit = 0.0;  // guard tiny negative residuals
      const double mag = std::abs(alpha);
      const bool better =
          limit < t_best - 1e-10 ||
          (limit < t_best + 1e-10 && leave_row >= 0 &&
           (bland ? basis_[static_cast<size_t>(i)] <
                        basis_[static_cast<size_t>(leave_row)]
                  : mag > best_pivot_mag));
      if (better) {
        t_best = limit;
        leave_row = i;
        leave_at_upper = at_upper;
        best_pivot_mag = mag;
      }
    }

    if (t_best == LpProblem::kInfinity) {
      *iterations_used += iter;
      return LpStatus::kUnbounded;
    }
    degenerate_streak_ =
        (t_best <= kDegenerateStep) ? degenerate_streak_ + 1 : 0;
    if (stats_ != nullptr &&
        degenerate_streak_ > stats_->max_degenerate_streak) {
      stats_->max_degenerate_streak = degenerate_streak_;
    }

    // --- Apply the step to all basic values. ---
    if (t_best != 0.0) {
      for (int i = 0; i < m; ++i) {
        const double alpha =
            matrix_[static_cast<size_t>(i)][static_cast<size_t>(enter)];
        if (alpha != 0.0) xb_[static_cast<size_t>(i)] -= dir * alpha * t_best;
      }
    }

    if (leave_row == -1) {
      if (stats_ != nullptr) ++stats_->bound_flips;
      // Bound flip: the entering variable runs to its opposite bound.
      status_[static_cast<size_t>(enter)] =
          status_[static_cast<size_t>(enter)] == VarStatus::kAtLower
              ? VarStatus::kAtUpper
              : VarStatus::kAtLower;
      continue;
    }

    // --- Pivot: entering becomes basic in leave_row. ---
    const int leave_col = basis_[static_cast<size_t>(leave_row)];
    status_[static_cast<size_t>(leave_col)] =
        leave_at_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    const double enter_from =
        dir > 0 ? lb_[static_cast<size_t>(enter)] : ub_[static_cast<size_t>(enter)];
    basis_[static_cast<size_t>(leave_row)] = enter;
    status_[static_cast<size_t>(enter)] = VarStatus::kBasic;
    xb_[static_cast<size_t>(leave_row)] = enter_from + dir * t_best;

    // Gauss-Jordan elimination on the entering column.
    std::vector<double>& prow = matrix_[static_cast<size_t>(leave_row)];
    const double pivot = prow[static_cast<size_t>(enter)];
    assert(std::abs(pivot) > kPivotTol);
    const double inv = 1.0 / pivot;
    for (double& v : prow) v *= inv;
    prow[static_cast<size_t>(enter)] = 1.0;  // exact
    for (int i = 0; i < m; ++i) {
      if (i == leave_row) continue;
      std::vector<double>& row = matrix_[static_cast<size_t>(i)];
      const double factor = row[static_cast<size_t>(enter)];
      if (factor == 0.0) continue;
      for (int j = 0; j < ncols; ++j) {
        row[static_cast<size_t>(j)] -= factor * prow[static_cast<size_t>(j)];
      }
      row[static_cast<size_t>(enter)] = 0.0;  // exact
    }
    const double dfactor = d_[static_cast<size_t>(enter)];
    if (dfactor != 0.0) {
      for (int j = 0; j < ncols; ++j) {
        d_[static_cast<size_t>(j)] -= dfactor * prow[static_cast<size_t>(j)];
      }
      d_[static_cast<size_t>(enter)] = 0.0;
    }
    // Devex weight update against the (normalized) pivot row.
    const double w_enter = devex_[static_cast<size_t>(enter)];
    for (int j = 0; j < ncols; ++j) {
      const double a = prow[static_cast<size_t>(j)];
      if (a == 0.0) continue;
      double& w = devex_[static_cast<size_t>(j)];
      const double candidate = a * a * w_enter;
      if (candidate > w) w = candidate;
    }
    devex_[static_cast<size_t>(leave_col)] =
        std::max(1.0, w_enter / std::max(pivot * pivot, 1e-12));
  }
  *iterations_used += iter;
  return LpStatus::kIterationLimit;
}

LpResult DenseTableau::Run(int max_iterations, double deadline_seconds,
                           bool want_duals) {
  deadline_seconds_ = deadline_seconds;
  watch_.Reset();
  const int m = NumRows();
  LpResult result;

  // Initial point: every column rests at a finite bound.
  status_.assign(static_cast<size_t>(NumCols()), VarStatus::kAtLower);
  for (int j = 0; j < NumCols(); ++j) {
    if (lb_[static_cast<size_t>(j)] == -LpProblem::kInfinity) {
      assert(ub_[static_cast<size_t>(j)] != LpProblem::kInfinity &&
             "free variables are not supported");
      status_[static_cast<size_t>(j)] = VarStatus::kAtUpper;
    }
  }

  // Residual per row given the initial nonbasic values; artificial columns
  // absorb it so the artificial basis starts feasible.
  std::vector<double> residual(static_cast<size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) {
    double r = rhs_[static_cast<size_t>(i)];
    const std::vector<double>& row = matrix_[static_cast<size_t>(i)];
    for (int j = 0; j < NumCols(); ++j) {
      const double v = BoundValue(j);
      if (v != 0.0) r -= row[static_cast<size_t>(j)] * v;
    }
    residual[static_cast<size_t>(i)] = r;
  }

  // Negate rows with negative residual so that every artificial can enter
  // with coefficient +1 and the initial basis matrix is the identity.
  std::vector<double> row_sign(static_cast<size_t>(m), 1.0);
  for (int i = 0; i < m; ++i) {
    if (residual[static_cast<size_t>(i)] < 0.0) {
      for (double& v : matrix_[static_cast<size_t>(i)]) v = -v;
      rhs_[static_cast<size_t>(i)] = -rhs_[static_cast<size_t>(i)];
      residual[static_cast<size_t>(i)] = -residual[static_cast<size_t>(i)];
      row_sign[static_cast<size_t>(i)] = -1.0;
    }
  }

  const int first_artificial = NumCols();
  basis_.resize(static_cast<size_t>(m));
  xb_.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    const int art = AddColumn(0.0, LpProblem::kInfinity, 0.0);
    status_.push_back(VarStatus::kBasic);
    for (int r = 0; r < m; ++r) {
      matrix_[static_cast<size_t>(r)].push_back(r == i ? 1.0 : 0.0);
    }
    basis_[static_cast<size_t>(i)] = art;
    xb_[static_cast<size_t>(i)] = residual[static_cast<size_t>(i)];
  }

  // --- Phase 1: minimize the sum of artificials. ---
  std::vector<double> phase1_cost(static_cast<size_t>(NumCols()), 0.0);
  for (int j = first_artificial; j < NumCols(); ++j) {
    phase1_cost[static_cast<size_t>(j)] = 1.0;
  }
  if (stats_ != nullptr) stats_->fill_start = StoredEntries();
  ComputeReducedCosts(phase1_cost);
  result.iterations = 0;
  LpStatus phase1 = Iterate(max_iterations, &result.iterations);
  if (stats_ != nullptr) stats_->phase1_iterations = result.iterations;
  if (phase1 == LpStatus::kIterationLimit) {
    result.status = LpStatus::kIterationLimit;
    return result;
  }
  double infeasibility = 0.0;
  for (int i = 0; i < m; ++i) {
    if (basis_[static_cast<size_t>(i)] >= first_artificial) {
      infeasibility += xb_[static_cast<size_t>(i)];
    }
  }
  for (int j = first_artificial; j < NumCols(); ++j) {
    if (status_[static_cast<size_t>(j)] == VarStatus::kAtUpper) {
      infeasibility += std::abs(ub_[static_cast<size_t>(j)]);
    }
  }
  if (infeasibility > kPhase1Tol) {
    if (std::getenv("NOSE_LP_DEBUG") != nullptr) {
      std::fprintf(stderr, "[lp] phase-1 infeasibility %.3e (rows=%d)\n",
                   infeasibility, m);
    }
    result.status = LpStatus::kInfeasible;
    return result;
  }

  // Freeze artificials at zero for phase 2. Any still basic sit at 0 and
  // can only leave the basis degenerately, which is fine.
  for (int j = first_artificial; j < NumCols(); ++j) {
    ub_[static_cast<size_t>(j)] = 0.0;
    if (status_[static_cast<size_t>(j)] == VarStatus::kAtUpper) {
      status_[static_cast<size_t>(j)] = VarStatus::kAtLower;
    }
  }

  // --- Phase 2: original objective. ---
  std::vector<double> phase2_cost = cost_;
  phase2_cost.resize(static_cast<size_t>(NumCols()), 0.0);
  ComputeReducedCosts(phase2_cost);
  LpStatus phase2 = Iterate(max_iterations, &result.iterations);
  if (phase2 == LpStatus::kIterationLimit ||
      phase2 == LpStatus::kUnbounded) {
    result.status = phase2;
    return result;
  }

  // Extract structural values and the objective.
  result.x.assign(static_cast<size_t>(n_), 0.0);
  for (int j = 0; j < n_; ++j) {
    if (status_[static_cast<size_t>(j)] != VarStatus::kBasic) {
      result.x[static_cast<size_t>(j)] = BoundValue(j);
    }
  }
  for (int i = 0; i < m; ++i) {
    const int k = basis_[static_cast<size_t>(i)];
    if (k < n_) result.x[static_cast<size_t>(k)] = xb_[static_cast<size_t>(i)];
  }
  result.objective = 0.0;
  for (int j = 0; j < n_; ++j) {
    result.objective += cost_[static_cast<size_t>(j)] * result.x[static_cast<size_t>(j)];
  }
  result.status = LpStatus::kOptimal;

  // Dual extraction: row i's artificial is the identity column of row i, so
  // its phase-2 reduced cost is −y_i (the artificial has zero objective
  // cost). Undo the phase-1 row negation via row_sign.
  if (want_duals) {
    result.duals.assign(static_cast<size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      const int art = first_artificial + i;
      result.duals[static_cast<size_t>(i)] =
          row_sign[static_cast<size_t>(i)] * -d_[static_cast<size_t>(art)];
    }
  }
  return result;
}

}  // namespace

LpResult LpProblem::Solve(
    const std::vector<std::tuple<int, double, double>>& bound_overrides,
    int max_iterations, double deadline_seconds, LpEngine engine,
    const LpBasis* start_basis, LpBasis* final_basis,
    std::vector<double>* duals) const {
  std::vector<double> lb = lb_;
  std::vector<double> ub = ub_;
  for (const auto& [var, olb, oub] : bound_overrides) {
    lb[static_cast<size_t>(var)] = olb;
    ub[static_cast<size_t>(var)] = oub;
  }

  const int n = num_variables();
  if (max_iterations <= 0) {
    max_iterations = 20000 + 50 * (num_rows() + num_variables());
  }

  // Solver telemetry (--solve-log): one relaxed load when disabled; when
  // enabled the engines fill `stats` and the record is appended at the end.
  SolveLog& solve_log = SolveLog::Global();
  const bool logging = solve_log.enabled();
  LpSolveStats stats;
  Stopwatch solve_watch;
  // Equilibration conditioning estimate: spread of the per-row magnitudes
  // the scaling divides out (max/min over nontrivial rows).
  double equil_min = kInfinity;
  double equil_max = 0.0;

  // Slack columns: one per inequality row, so every row becomes equality.
  // Row equilibration: scale each row to unit magnitude so rows mixing
  // byte-scale and unit-scale coefficients (e.g. storage constraints)
  // stay within the solver's absolute tolerances.
  std::vector<int> slack_col(rows_.size(), -1);
  std::vector<double> row_scale(rows_.size(), 1.0);
  LpResult result;
  const bool want_duals = duals != nullptr;
  // The sparse-tableau and factorized engines share the same row/slack/
  // scaling preparation; only the simplex core behind the interface
  // differs.
  auto run_row_engine = [&](auto& simplex) {
    simplex.set_stats(logging ? &stats : nullptr);
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (rows_[i].type != RowType::kEq) {
        slack_col[i] = simplex.AddColumn(0.0, kInfinity, 0.0);
      }
    }
    for (size_t i = 0; i < rows_.size(); ++i) {
      const LpRow& src = rows_[i];
      double max_mag = 0.0;
      for (double v : src.values) max_mag = std::max(max_mag, std::abs(v));
      const double scale = max_mag > 1e-12 ? 1.0 / max_mag : 1.0;
      row_scale[i] = scale;
      if (logging && max_mag > 1e-12) {
        equil_min = std::min(equil_min, max_mag);
        equil_max = std::max(equil_max, max_mag);
      }
      TabRow row;
      row.idx = src.indices;
      row.val = src.values;
      if (scale != 1.0) {
        for (double& v : row.val) v *= scale;
      }
      if (src.type == RowType::kLe) {
        row.idx.push_back(slack_col[i]);
        row.val.push_back(1.0);
      } else if (src.type == RowType::kGe) {
        row.idx.push_back(slack_col[i]);
        row.val.push_back(-1.0);
      }
      simplex.AddEqualityRow(std::move(row), src.rhs * scale,
                             slack_col[i]);
    }
    result = simplex.Run(max_iterations, deadline_seconds, start_basis,
                         final_basis, want_duals);
    if (logging) {
      stats.fill_end = simplex.StoredEntries();
      stats.dense_rows = simplex.NumDenseRows();
      stats.tableau_cols = simplex.NumTableauCols();
    }
  };
  if (engine == LpEngine::kFactorized) {
    FactorizedSimplex simplex(n, std::move(lb), std::move(ub), cost_);
    run_row_engine(simplex);
    if (logging) {
      stats.refactorizations = simplex.refactorizations();
      stats.ft_updates = simplex.ft_updates();
      stats.factor_fill = simplex.FactorFill();
    }
  } else if (engine == LpEngine::kSparse) {
    SparseSimplex simplex(n, std::move(lb), std::move(ub), cost_);
    run_row_engine(simplex);
  } else {
    if (final_basis != nullptr) final_basis->clear();
    DenseTableau tableau(n, std::move(lb), std::move(ub), cost_);
    tableau.set_stats(logging ? &stats : nullptr);
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (rows_[i].type != RowType::kEq) {
        slack_col[i] = tableau.AddColumn(0.0, kInfinity, 0.0);
      }
    }
    // Dense rows sized to structural + slack columns (artificials appended
    // by the tableau itself).
    int total_cols = n;
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (slack_col[i] >= 0) total_cols = std::max(total_cols, slack_col[i] + 1);
    }
    for (size_t i = 0; i < rows_.size(); ++i) {
      const LpRow& src = rows_[i];
      std::vector<double> dense(static_cast<size_t>(total_cols), 0.0);
      double max_mag = 0.0;
      for (size_t k = 0; k < src.indices.size(); ++k) {
        dense[static_cast<size_t>(src.indices[k])] = src.values[k];
        max_mag = std::max(max_mag, std::abs(src.values[k]));
      }
      const double scale = max_mag > 1e-12 ? 1.0 / max_mag : 1.0;
      row_scale[i] = scale;
      if (logging && max_mag > 1e-12) {
        equil_min = std::min(equil_min, max_mag);
        equil_max = std::max(equil_max, max_mag);
      }
      if (scale != 1.0) {
        for (double& v : dense) v *= scale;
      }
      if (src.type == RowType::kLe) {
        dense[static_cast<size_t>(slack_col[i])] = 1.0;
      } else if (src.type == RowType::kGe) {
        dense[static_cast<size_t>(slack_col[i])] = -1.0;
      }
      tableau.AddEqualityRow(std::move(dense), src.rhs * scale);
    }
    result = tableau.Run(max_iterations, deadline_seconds, want_duals);
    if (logging) {
      stats.fill_end = tableau.StoredEntries();
      stats.dense_rows = tableau.NumDenseRows();
      stats.tableau_cols = tableau.NumTableauCols();
    }
  }

  // Undo row equilibration on the duals: the engine solved
  // scale_i·(a_i·x) = scale_i·b_i, so the multiplier of the original row is
  // scale_i times the engine's.
  if (duals != nullptr) {
    if (result.status == LpStatus::kOptimal &&
        result.duals.size() == rows_.size()) {
      for (size_t i = 0; i < rows_.size(); ++i) {
        result.duals[i] *= row_scale[i];
      }
      *duals = result.duals;
    } else {
      duals->clear();
      result.duals.clear();
    }
  }

  static obs::Counter& solves =
      obs::MetricsRegistry::Global().GetCounter("solver.lp_solves");
  static obs::Counter& iterations = obs::MetricsRegistry::Global().GetCounter(
      "solver.simplex_iterations");
  static obs::Counter& nonzeros =
      obs::MetricsRegistry::Global().GetCounter("solver.lp_nonzeros");
  solves.Increment();
  iterations.Add(static_cast<uint64_t>(result.iterations));
  nonzeros.Add(num_nonzeros_);
  if (start_basis != nullptr && !start_basis->empty() &&
      engine != LpEngine::kDense) {
    static obs::Counter& hot_attempts = obs::MetricsRegistry::Global()
        .GetCounter("solver.lp_hot_start_attempts");
    hot_attempts.Increment();
    if (result.hot_started) {
      static obs::Counter& hot_starts =
          obs::MetricsRegistry::Global().GetCounter("solver.lp_hot_starts");
      hot_starts.Increment();
    }
  }
  if (logging) {
    stats.engine = LpEngineName(engine);
    stats.status = LpStatusName(result.status);
    stats.rows = num_rows();
    stats.cols = n;
    stats.nonzeros = num_nonzeros_;
    stats.iterations = result.iterations;
    stats.hot_start_attempted = start_basis != nullptr &&
                                !start_basis->empty() &&
                                engine != LpEngine::kDense;
    stats.hot_started = result.hot_started;
    stats.equilibration_cond =
        (equil_max > 0.0 && equil_min > 0.0) ? equil_max / equil_min : 1.0;
    stats.bip_id = SolveLog::ContextBipId();
    stats.node_id = SolveLog::ContextNodeId();
    stats.solve_ms = solve_watch.ElapsedMillis();
    solve_log.RecordLp(std::move(stats));
  }
  return result;
}

}  // namespace nose
