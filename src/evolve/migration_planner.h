#ifndef NOSE_EVOLVE_MIGRATION_PLANNER_H_
#define NOSE_EVOLVE_MIGRATION_PLANNER_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "schema/schema.h"

namespace nose::evolve {

enum class MigrationStepKind {
  kBuild,     ///< backfill one new column family
  kCatchUp,   ///< replay the update log into the new column families
  kDualWrite, ///< apply updates to both generations
  kVerify,    ///< compare sampled query results old vs. new
  kCutover,   ///< switch the active generation
  kDrop,      ///< drop one superseded column family
};

struct MigrationStep {
  MigrationStepKind kind = MigrationStepKind::kBuild;
  /// Store name of the column family (kBuild/kDrop steps only).
  std::string cf_name;
  /// Index into the new schema (kBuild steps only).
  size_t schema_index = 0;
  double est_rows = 0.0;
  double est_bytes = 0.0;
  double est_cost_ms = 0.0;
};

/// Diff of two named schemas turned into an ordered migration: build every
/// new-only column family (smallest first, so early steps finish fast and
/// a failed migration wastes the least data movement), catch up from the
/// update log, dual-write, verify, cut over, then drop old-only column
/// families. Statement availability holds at every step by construction:
/// the old generation's column families are untouched until the
/// post-cutover drops, and the new generation only becomes active once all
/// builds completed and verified.
struct MigrationPlan {
  std::vector<MigrationStep> steps;
  /// Store names of column families present in both schemas, as named by
  /// the NEW schema. The controller names kept families after their live
  /// store column family, so these are also the old names.
  std::vector<std::string> keep_names;
  /// Indices into the new schema that must be built, in build order.
  std::vector<size_t> build_indices;
  /// Old store names to drop after cutover.
  std::vector<std::string> drop_names;
  double est_build_rows = 0.0;
  double est_build_bytes = 0.0;
  double est_build_cost_ms = 0.0;

  bool empty() const { return build_indices.empty() && drop_names.empty(); }
  std::string ToString() const;
};

/// Diffs `old_schema` against `new_schema` (both carrying store names) by
/// canonical column-family key and prices the data movement with the
/// store's latency model (one write request per materialized row).
MigrationPlan PlanMigration(const Schema& old_schema, const Schema& new_schema,
                            const CostModel& cost);

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_MIGRATION_PLANNER_H_
