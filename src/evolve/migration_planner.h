#ifndef NOSE_EVOLVE_MIGRATION_PLANNER_H_
#define NOSE_EVOLVE_MIGRATION_PLANNER_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "optimizer/horizon.h"
#include "schema/schema.h"

namespace nose::evolve {

enum class MigrationStepKind {
  kBuild,     ///< backfill one new column family
  kCatchUp,   ///< replay the update log into the new column families
  kDualWrite, ///< apply updates to both generations
  kVerify,    ///< compare sampled query results old vs. new
  kCutover,   ///< switch the active generation
  kDrop,      ///< drop one superseded column family
};

struct MigrationStep {
  MigrationStepKind kind = MigrationStepKind::kBuild;
  /// Store name of the column family (kBuild/kDrop steps only).
  std::string cf_name;
  /// Index into the new schema (kBuild steps only).
  size_t schema_index = 0;
  double est_rows = 0.0;
  double est_bytes = 0.0;
  double est_cost_ms = 0.0;
};

/// Diff of two named schemas turned into an ordered migration: build every
/// new-only column family (smallest first, so early steps finish fast and
/// a failed migration wastes the least data movement), catch up from the
/// update log, dual-write, verify, cut over, then drop old-only column
/// families. Statement availability holds at every step by construction:
/// the old generation's column families are untouched until the
/// post-cutover drops, and the new generation only becomes active once all
/// builds completed and verified.
struct MigrationPlan {
  std::vector<MigrationStep> steps;
  /// Store names of column families present in both schemas, as named by
  /// the NEW schema. The controller names kept families after their live
  /// store column family, so these are also the old names.
  std::vector<std::string> keep_names;
  /// Indices into the new schema that must be built, in build order.
  std::vector<size_t> build_indices;
  /// Old store names to drop after cutover.
  std::vector<std::string> drop_names;
  double est_build_rows = 0.0;
  double est_build_bytes = 0.0;
  double est_build_cost_ms = 0.0;
  /// Σ DropCostMs over drop_names (the post-cutover drop steps).
  double est_drop_cost_ms = 0.0;
  /// Σ DualWriteCostMs over the builds under the traffic profile given to
  /// PlanMigration; 0 when the caller passed no traffic.
  double est_dual_write_cost_ms = 0.0;

  bool empty() const { return build_indices.empty() && drop_names.empty(); }
  std::string ToString() const;
  /// Everything a migration is expected to charge the store: builds,
  /// drops, and dual-write overhead. The quantity commensurable with the
  /// horizon BIP's transition pricing.
  double est_total_cost_ms() const {
    return est_build_cost_ms + est_drop_cost_ms + est_dual_write_cost_ms;
  }
};

/// Diffs `old_schema` against `new_schema` (both carrying store names) by
/// canonical column-family key and prices the data movement with the
/// store's latency model, using the SAME pricing functions as the horizon
/// optimizer's transition variables (BuildCostMs / DropCostMs /
/// DualWriteCostMs) — so a reactive migration and a planned one charge
/// identically for identical diffs. `traffic` describes the foreground
/// load expected while the migration runs; the default prices no
/// dual-write overhead.
MigrationPlan PlanMigration(const Schema& old_schema, const Schema& new_schema,
                            const CostModel& cost,
                            const MigrationTraffic& traffic = MigrationTraffic());

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_MIGRATION_PLANNER_H_
