#include "evolve/migration_executor.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "executor/loader.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nose::evolve {

namespace {

int64_t MsToNanos(double ms) {
  return static_cast<int64_t>(std::llround(ms * 1e6));
}

}  // namespace

MigrationExecutor::MigrationExecutor(
    const Dataset* data, RecordStore* store, const Schema* new_schema,
    PlanExecutor* old_executor, PlanExecutor* new_executor,
    const std::map<std::string, QueryPlan>* old_query_plans,
    const std::map<std::string, QueryPlan>* new_query_plans,
    const std::map<std::string, UpdatePlan>* new_update_plans,
    const MigrationPlan* plan, Options options)
    : data_(data),
      store_(store),
      new_schema_(new_schema),
      old_executor_(old_executor),
      new_executor_(new_executor),
      old_query_plans_(old_query_plans),
      new_query_plans_(new_query_plans),
      new_update_plans_(new_update_plans),
      plan_(plan),
      options_(options) {
  if (options_.chunk_rows == 0) options_.chunk_rows = 1;
  if (options_.catchup_batch == 0) options_.catchup_batch = 1;
}

MigrationProgress MigrationExecutor::progress() const {
  std::lock_guard<std::mutex> lock(progress_mu_);
  MigrationProgress out = progress_;
  out.simulated_ms = static_cast<double>(progress_sim_ns_) / 1e6;
  return out;
}

Status MigrationExecutor::Prepare() {
  std::set<std::string> build_keys;
  for (size_t i : plan_->build_indices) {
    const ColumnFamily& cf = new_schema_->column_families()[i];
    const std::string& name = new_schema_->names()[i];
    NOSE_RETURN_IF_ERROR(store_->CreateColumnFamily(
        name, cf.partition_key().size(), cf.clustering_key().size(),
        cf.values().size()));
    build_keys.insert(cf.key());
  }
  // Replay maintains only the build set (see replay_plans_ in the header):
  // kept families are live and already maintained by the foreground.
  for (const auto& [stmt, plan] : *new_update_plans_) {
    UpdatePlan filtered;
    filtered.update = plan.update;
    for (const UpdatePlanPart& part : plan.parts) {
      if (part.cf != nullptr && build_keys.count(part.cf->key()) > 0) {
        filtered.parts.push_back(part);
      }
    }
    if (!filtered.parts.empty()) replay_plans_.emplace(stmt, filtered);
  }
  if (plan_->build_indices.empty()) phase_ = MigrationPhase::kCatchUp;
  return Status::Ok();
}

Status MigrationExecutor::Step(const std::vector<LoggedStatement>& update_log,
                               const std::vector<LoggedStatement>& query_log) {
  switch (phase_.load()) {
    case MigrationPhase::kBackfill:
      return BackfillStep();
    case MigrationPhase::kCatchUp:
      return CatchUpStep(update_log);
    case MigrationPhase::kDualWrite:
      if (++dual_write_steps_ >= options_.min_dual_write_steps) {
        phase_ = MigrationPhase::kVerify;
      }
      return Status::Ok();
    case MigrationPhase::kVerify:
      return VerifyStep(query_log);
    case MigrationPhase::kReadyForCutover:
    case MigrationPhase::kDone:
    case MigrationPhase::kFailed:
      return Status::Ok();
  }
  return Status::Ok();
}

Status MigrationExecutor::BackfillChunk(size_t cf_index, size_t begin,
                                        size_t end) {
  const ColumnFamily& cf = new_schema_->column_families()[cf_index];
  const std::string& name = new_schema_->names()[cf_index];
  const double before_ms = RecordStore::ThreadChargeMs();
  auto written = LoadColumnFamilyChunk(*data_, cf, name, store_, begin, end);
  if (!written.ok()) {
    phase_ = MigrationPhase::kFailed;
    return written.status();
  }
  const double charge = RecordStore::ThreadChargeMs() - before_ms;
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    progress_sim_ns_ += MsToNanos(charge);
    progress_.rows_backfilled += written.value();
    ++progress_.chunks;
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("evolve.backfill_rows").Add(written.value());
  reg.GetCounter("evolve.backfill_chunks").Increment();
  return Status::Ok();
}

Status MigrationExecutor::BackfillStep() {
  obs::Span span("evolve.backfill_chunk", "evolve");
  const size_t i = plan_->build_indices[build_pos_];
  const ColumnFamily& cf = new_schema_->column_families()[i];
  const size_t total_roots = data_->RowCount(cf.path().EntityAt(0));

  NOSE_RETURN_IF_ERROR(
      BackfillChunk(i, root_cursor_, root_cursor_ + options_.chunk_rows));

  root_cursor_ += options_.chunk_rows;
  if (root_cursor_ >= total_roots) {
    root_cursor_ = 0;
    if (++build_pos_ >= plan_->build_indices.size()) {
      phase_ = MigrationPhase::kCatchUp;
    }
  }
  return Status::Ok();
}

Status MigrationExecutor::BackfillAll(util::ThreadPool* pool) {
  obs::Span span("evolve.backfill_all", "evolve");
  // Flatten every build CF into (cf_index, root range) chunks, then fan
  // out: disjoint root ranges produce disjoint rows, so chunks commute.
  struct Chunk {
    size_t cf_index;
    size_t begin;
    size_t end;
  };
  std::vector<Chunk> chunks;
  for (size_t i : plan_->build_indices) {
    const ColumnFamily& cf = new_schema_->column_families()[i];
    const size_t total_roots = data_->RowCount(cf.path().EntityAt(0));
    for (size_t begin = 0; begin < total_roots;
         begin += options_.chunk_rows) {
      chunks.push_back(
          {i, begin, std::min(begin + options_.chunk_rows, total_roots)});
    }
  }
  Status status = util::ParallelForStatus(pool, chunks.size(), [&](size_t c) {
    return BackfillChunk(chunks[c].cf_index, chunks[c].begin, chunks[c].end);
  });
  if (!status.ok()) {
    phase_ = MigrationPhase::kFailed;
    return status;
  }
  phase_ = MigrationPhase::kCatchUp;
  return Status::Ok();
}

Status MigrationExecutor::ReplayUpdate(const LoggedStatement& entry) {
  auto it = replay_plans_.find(entry.statement);
  // An update with no build-set part modifies nothing the migration is
  // responsible for; the kept families were maintained by the foreground.
  if (it == replay_plans_.end()) return Status::Ok();
  return new_executor_->ExecuteUpdate(it->second, entry.params);
}

Status MigrationExecutor::ReplayRange(
    const std::vector<LoggedStatement>& update_log, size_t begin, size_t end) {
  const double before_ms = RecordStore::ThreadChargeMs();
  size_t replayed = 0;
  for (size_t i = begin; i < end && i < update_log.size(); ++i) {
    Status s = ReplayUpdate(update_log[i]);
    if (!s.ok()) {
      phase_ = MigrationPhase::kFailed;
      return s;
    }
    ++replayed;
  }
  const double charge = RecordStore::ThreadChargeMs() - before_ms;
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    progress_.catchup_updates += replayed;
    progress_sim_ns_ += MsToNanos(charge);
  }
  obs::MetricsRegistry::Global()
      .GetCounter("evolve.catchup_updates")
      .Add(replayed);
  return Status::Ok();
}

Status MigrationExecutor::CatchUpStep(
    const std::vector<LoggedStatement>& update_log) {
  const size_t begin = replay_pos_;
  const size_t end =
      std::min(update_log.size(), replay_pos_ + options_.catchup_batch);
  NOSE_RETURN_IF_ERROR(ReplayRange(update_log, begin, end));
  replay_pos_ = end;
  if (replay_pos_ == update_log.size()) {
    // Every update executed so far has been replayed in order; from here
    // the controller's OnUpdate calls keep the new generation in sync.
    phase_ = MigrationPhase::kDualWrite;
  }
  return Status::Ok();
}

StatusOr<bool> MigrationExecutor::TryVerify(
    const std::vector<LoggedStatement>& query_log) {
  obs::Span span("evolve.verify", "evolve");
  const double before_ms = RecordStore::ThreadChargeMs();
  size_t compared = 0;
  size_t skipped = 0;
  bool clean = true;
  Status status = Status::Ok();
  for (size_t i = query_log.size();
       i-- > 0 && compared < options_.verify_samples;) {
    const LoggedStatement& entry = query_log[i];
    auto nit = new_query_plans_->find(entry.statement);
    auto oit = old_query_plans_->find(entry.statement);
    if (nit == new_query_plans_->end() || oit == old_query_plans_->end()) {
      ++skipped;
      continue;
    }
    auto old_rows = old_executor_->ExecuteQuery(oit->second, entry.params);
    if (!old_rows.ok()) {
      status = old_rows.status();
      break;
    }
    auto new_rows = new_executor_->ExecuteQuery(nit->second, entry.params);
    if (!new_rows.ok()) {
      status = new_rows.status();
      break;
    }
    std::vector<ValueTuple> a = std::move(old_rows).value();
    std::vector<ValueTuple> b = std::move(new_rows).value();
    // Both plans honour the query's ORDER BY, but rows tied on the sort key
    // may interleave differently; compare as sets.
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ++compared;
    if (a != b) {
      clean = false;
      break;
    }
  }
  const double charge = RecordStore::ThreadChargeMs() - before_ms;
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    progress_.verify_queries += compared;
    progress_.verify_skipped += skipped;
    progress_sim_ns_ += MsToNanos(charge);
  }
  obs::MetricsRegistry::Global()
      .GetCounter("evolve.verify_queries")
      .Add(compared);
  if (!status.ok()) {
    phase_ = MigrationPhase::kFailed;
    return status;
  }
  return clean;
}

Status MigrationExecutor::VerifyStep(
    const std::vector<LoggedStatement>& query_log) {
  // A failed comparison in the single-threaded loop is never transient —
  // no foreground write can interleave — so a mismatch fails the
  // migration outright.
  NOSE_ASSIGN_OR_RETURN(bool clean, TryVerify(query_log));
  if (!clean) {
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      ++progress_.verify_mismatches;
    }
    obs::MetricsRegistry::Global()
        .GetCounter("evolve.verify_mismatches")
        .Increment();
    phase_ = MigrationPhase::kFailed;
    return Status::Internal("migration verification mismatch");
  }
  phase_ = MigrationPhase::kReadyForCutover;
  return Status::Ok();
}

Status MigrationExecutor::OnUpdate(const LoggedStatement& entry) {
  const MigrationPhase phase = phase_.load();
  if (phase != MigrationPhase::kDualWrite &&
      phase != MigrationPhase::kVerify &&
      phase != MigrationPhase::kReadyForCutover) {
    return Status::Ok();
  }
  const double before_ms = RecordStore::ThreadChargeMs();
  Status s = ReplayUpdate(entry);
  if (!s.ok()) {
    phase_ = MigrationPhase::kFailed;
    return s;
  }
  const double charge = RecordStore::ThreadChargeMs() - before_ms;
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    ++progress_.dual_writes;
    progress_sim_ns_ += MsToNanos(charge);
  }
  obs::MetricsRegistry::Global().GetCounter("evolve.dual_writes").Increment();
  return Status::Ok();
}

}  // namespace nose::evolve
