#include "evolve/migration_executor.h"

#include <algorithm>

#include "executor/loader.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nose::evolve {

MigrationExecutor::MigrationExecutor(
    const Dataset* data, RecordStore* store, const Schema* new_schema,
    PlanExecutor* old_executor, PlanExecutor* new_executor,
    const std::map<std::string, QueryPlan>* old_query_plans,
    const std::map<std::string, QueryPlan>* new_query_plans,
    const std::map<std::string, UpdatePlan>* new_update_plans,
    const MigrationPlan* plan, Options options)
    : data_(data),
      store_(store),
      new_schema_(new_schema),
      old_executor_(old_executor),
      new_executor_(new_executor),
      old_query_plans_(old_query_plans),
      new_query_plans_(new_query_plans),
      new_update_plans_(new_update_plans),
      plan_(plan),
      options_(options) {
  if (options_.chunk_rows == 0) options_.chunk_rows = 1;
  if (options_.catchup_batch == 0) options_.catchup_batch = 1;
}

Status MigrationExecutor::Prepare() {
  for (size_t i : plan_->build_indices) {
    const ColumnFamily& cf = new_schema_->column_families()[i];
    const std::string& name = new_schema_->names()[i];
    NOSE_RETURN_IF_ERROR(store_->CreateColumnFamily(
        name, cf.partition_key().size(), cf.clustering_key().size(),
        cf.values().size()));
  }
  if (plan_->build_indices.empty()) phase_ = MigrationPhase::kCatchUp;
  return Status::Ok();
}

Status MigrationExecutor::Step(const std::vector<LoggedStatement>& update_log,
                               const std::vector<LoggedStatement>& query_log) {
  switch (phase_) {
    case MigrationPhase::kBackfill:
      return BackfillStep();
    case MigrationPhase::kCatchUp:
      return CatchUpStep(update_log);
    case MigrationPhase::kDualWrite:
      if (++dual_write_steps_ >= options_.min_dual_write_steps) {
        phase_ = MigrationPhase::kVerify;
      }
      return Status::Ok();
    case MigrationPhase::kVerify:
      return VerifyStep(query_log);
    case MigrationPhase::kReadyForCutover:
    case MigrationPhase::kDone:
    case MigrationPhase::kFailed:
      return Status::Ok();
  }
  return Status::Ok();
}

Status MigrationExecutor::BackfillStep() {
  obs::Span span("evolve.backfill_chunk", "evolve");
  const size_t i = plan_->build_indices[build_pos_];
  const ColumnFamily& cf = new_schema_->column_families()[i];
  const std::string& name = new_schema_->names()[i];
  const size_t total_roots = data_->RowCount(cf.path().EntityAt(0));

  const double before_ms = store_->stats().simulated_ms;
  auto written = LoadColumnFamilyChunk(*data_, cf, name, store_, root_cursor_,
                                       root_cursor_ + options_.chunk_rows);
  if (!written.ok()) {
    phase_ = MigrationPhase::kFailed;
    return written.status();
  }
  progress_.simulated_ms += store_->stats().simulated_ms - before_ms;
  progress_.rows_backfilled += written.value();
  ++progress_.chunks;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("evolve.backfill_rows").Add(written.value());
  reg.GetCounter("evolve.backfill_chunks").Increment();

  root_cursor_ += options_.chunk_rows;
  if (root_cursor_ >= total_roots) {
    root_cursor_ = 0;
    if (++build_pos_ >= plan_->build_indices.size()) {
      phase_ = MigrationPhase::kCatchUp;
    }
  }
  return Status::Ok();
}

Status MigrationExecutor::ReplayUpdate(const LoggedStatement& entry) {
  auto it = new_update_plans_->find(entry.statement);
  // An update without a plan in the new generation modifies no new-
  // generation column family; nothing to maintain.
  if (it == new_update_plans_->end()) return Status::Ok();
  return new_executor_->ExecuteUpdate(it->second, entry.params);
}

Status MigrationExecutor::CatchUpStep(
    const std::vector<LoggedStatement>& update_log) {
  const double before_ms = store_->stats().simulated_ms;
  size_t replayed = 0;
  while (replay_pos_ < update_log.size() && replayed < options_.catchup_batch) {
    Status s = ReplayUpdate(update_log[replay_pos_]);
    if (!s.ok()) {
      phase_ = MigrationPhase::kFailed;
      return s;
    }
    ++replay_pos_;
    ++replayed;
  }
  progress_.catchup_updates += replayed;
  progress_.simulated_ms += store_->stats().simulated_ms - before_ms;
  obs::MetricsRegistry::Global()
      .GetCounter("evolve.catchup_updates")
      .Add(replayed);
  if (replay_pos_ == update_log.size()) {
    // Every update executed so far has been replayed in order; from here
    // the controller's OnUpdate calls keep the new generation in sync.
    phase_ = MigrationPhase::kDualWrite;
  }
  return Status::Ok();
}

Status MigrationExecutor::VerifyStep(
    const std::vector<LoggedStatement>& query_log) {
  obs::Span span("evolve.verify", "evolve");
  const double before_ms = store_->stats().simulated_ms;
  size_t compared = 0;
  for (size_t i = query_log.size();
       i-- > 0 && compared < options_.verify_samples;) {
    const LoggedStatement& entry = query_log[i];
    auto nit = new_query_plans_->find(entry.statement);
    auto oit = old_query_plans_->find(entry.statement);
    if (nit == new_query_plans_->end() || oit == old_query_plans_->end()) {
      ++progress_.verify_skipped;
      continue;
    }
    auto old_rows = old_executor_->ExecuteQuery(oit->second, entry.params);
    if (!old_rows.ok()) {
      phase_ = MigrationPhase::kFailed;
      return old_rows.status();
    }
    auto new_rows = new_executor_->ExecuteQuery(nit->second, entry.params);
    if (!new_rows.ok()) {
      phase_ = MigrationPhase::kFailed;
      return new_rows.status();
    }
    std::vector<ValueTuple> a = std::move(old_rows).value();
    std::vector<ValueTuple> b = std::move(new_rows).value();
    // Both plans honour the query's ORDER BY, but rows tied on the sort key
    // may interleave differently; compare as sets.
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ++progress_.verify_queries;
    ++compared;
    if (a != b) {
      ++progress_.verify_mismatches;
      obs::MetricsRegistry::Global()
          .GetCounter("evolve.verify_mismatches")
          .Increment();
      phase_ = MigrationPhase::kFailed;
      progress_.simulated_ms += store_->stats().simulated_ms - before_ms;
      return Status::Internal("migration verification mismatch on " +
                              entry.statement);
    }
  }
  obs::MetricsRegistry::Global().GetCounter("evolve.verify_queries").Add(compared);
  progress_.simulated_ms += store_->stats().simulated_ms - before_ms;
  phase_ = MigrationPhase::kReadyForCutover;
  return Status::Ok();
}

Status MigrationExecutor::OnUpdate(const LoggedStatement& entry) {
  if (phase_ != MigrationPhase::kDualWrite &&
      phase_ != MigrationPhase::kVerify &&
      phase_ != MigrationPhase::kReadyForCutover) {
    return Status::Ok();
  }
  const double before_ms = store_->stats().simulated_ms;
  Status s = ReplayUpdate(entry);
  if (!s.ok()) {
    phase_ = MigrationPhase::kFailed;
    return s;
  }
  ++progress_.dual_writes;
  progress_.simulated_ms += store_->stats().simulated_ms - before_ms;
  obs::MetricsRegistry::Global().GetCounter("evolve.dual_writes").Increment();
  return Status::Ok();
}

}  // namespace nose::evolve
