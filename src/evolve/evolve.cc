#include "evolve/evolve.h"

#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nose::evolve {

EvolveController::EvolveController(Workload* workload, const Dataset* data,
                                   EvolveOptions options)
    : workload_(workload),
      data_(data),
      options_(std::move(options)),
      advisor_(options_.advisor),
      tracker_(options_.tracker),
      store_(options_.advisor.cost_params) {}

EvolveController::~EvolveController() = default;

std::unique_ptr<EvolveController::Generation> EvolveController::MakeGeneration(
    Recommendation rec, const Schema* reuse_names_from) {
  auto gen = std::make_unique<Generation>();
  gen->rec = std::move(rec);
  gen->named = std::make_unique<Schema>();
  const std::string prefix = "g" + std::to_string(generation_ + 1) + "_";
  const Schema& advised = gen->rec.schema;
  for (size_t i = 0; i < advised.size(); ++i) {
    const ColumnFamily& cf = advised.column_families()[i];
    const std::string* kept =
        reuse_names_from != nullptr ? reuse_names_from->NameOf(cf) : nullptr;
    // Kept column families retain their live store names; new ones get
    // generation-prefixed names so both generations coexist in one store.
    const std::string name =
        kept != nullptr ? *kept
                        : (reuse_names_from != nullptr ? prefix : std::string()) +
                              advised.names()[i];
    gen->named->Add(cf, name, advised.PoolIdAt(i));
  }
  for (const auto& [stmt, plan] : gen->rec.query_plans) {
    gen->query_plans.emplace(stmt, plan);
  }
  for (const auto& [stmt, plan] : gen->rec.update_plans) {
    gen->update_plans.emplace(stmt, plan);
  }
  gen->executor = std::make_unique<PlanExecutor>(&store_, gen->named.get());
  return gen;
}

std::map<std::string, double> EvolveController::ActiveWeights() const {
  std::map<std::string, double> weights;
  for (const auto& [entry, weight] : workload_->EntriesIn(active_mix_)) {
    weights[entry->name] = weight;
  }
  return weights;
}

Status EvolveController::Init(const std::string& initial_mix) {
  auto advise = advisor_.Advise(*workload_, initial_mix);
  if (!advise.ok()) return advise.status();
  active_mix_ = initial_mix;
  active_ = MakeGeneration(std::move(advise).value().rec, nullptr);
  NOSE_RETURN_IF_ERROR(LoadSchema(*data_, *active_->named, &store_));
  tracker_.SetAdvised(ActiveWeights());
  obs::MetricsRegistry::Global().GetGauge("evolve.generation").Set(0.0);
  return Status::Ok();
}

Status EvolveController::InitPlanned(std::vector<PlannedWindow> windows) {
  if (windows.empty()) {
    return Status::InvalidArgument("planned horizon has no windows");
  }
  planned_mode_ = true;
  planned_ = std::move(windows);
  current_window_ = 0;
  active_mix_ = planned_[0].mix;
  active_ = MakeGeneration(planned_[0].rec, nullptr);
  NOSE_RETURN_IF_ERROR(LoadSchema(*data_, *active_->named, &store_));
  tracker_.SetAdvised(ActiveWeights());
  obs::MetricsRegistry::Global().GetGauge("evolve.generation").Set(0.0);
  return Status::Ok();
}

StatusOr<std::vector<ValueTuple>> EvolveController::ExecuteQuery(
    const std::string& statement, const PlanExecutor::Params& params) {
  auto it = active_->query_plans.find(statement);
  if (it == active_->query_plans.end()) {
    ++report_.invariant_violations;
    return Status::NotFound("no active plan for query " + statement);
  }
  const double before = RecordStore::ThreadChargeMs();
  auto rows = active_->executor->ExecuteQuery(it->second, params);
  if (!rows.ok()) return rows.status();
  tracker_.Record(statement, RecordStore::ThreadChargeMs() - before);
  ++report_.statements;
  query_log_.push_back({statement, params});
  if (query_log_.size() > options_.query_log_capacity) {
    query_log_.erase(query_log_.begin());
  }
  return rows;
}

Status EvolveController::ExecuteUpdate(const std::string& statement,
                                       const PlanExecutor::Params& params) {
  auto it = active_->update_plans.find(statement);
  if (it == active_->update_plans.end()) {
    ++report_.invariant_violations;
    return Status::NotFound("no active plan for update " + statement);
  }
  const double before = RecordStore::ThreadChargeMs();
  NOSE_RETURN_IF_ERROR(active_->executor->ExecuteUpdate(it->second, params));
  tracker_.Record(statement, RecordStore::ThreadChargeMs() - before);
  ++report_.statements;
  update_log_.push_back({statement, params});
  if (migration_ != nullptr) {
    NOSE_RETURN_IF_ERROR(migration_->OnUpdate(update_log_.back()));
  }
  return Status::Ok();
}

Status EvolveController::EndTransaction() {
  ++report_.transactions;
  report_.last_drift = tracker_.drift();
  CheckInvariants();
  if (migration_ != nullptr) return AdvanceMigration();
  if (planned_mode_) {
    // Planned mode ignores drift triggers: migrations start at the
    // horizon-planned boundaries.
    if (current_window_ + 1 < planned_.size() &&
        report_.transactions >= planned_[current_window_ + 1].start_transaction) {
      return StartPlannedMigration(current_window_ + 1);
    }
    return Status::Ok();
  }
  if (tracker_.ShouldReadvise()) return StartReadvise();
  return Status::Ok();
}

Status EvolveController::StartPlannedMigration(size_t target) {
  obs::Span span("evolve.planned_migration", "evolve");
  pending_record_ = MigrationRecord();
  pending_record_.started_at_transaction = report_.transactions;
  pending_record_.planned = true;
  pending_record_.to_window = target;
  pending_record_.drift_at_trigger = tracker_.drift();

  auto next = MakeGeneration(planned_[target].rec, active_->named.get());
  CostModel cost(options_.advisor.cost_params);
  // Price the dual-write overhead under the mix the migration enters —
  // the same traffic profile the horizon planner charged its transition
  // variables with, so planned estimates and execution-time estimates
  // agree.
  MigrationTraffic traffic;
  traffic.update_weight_share =
      UpdateWeightShare(*workload_, planned_[target].mix);
  traffic.chunk_rows = static_cast<double>(options_.migration.chunk_rows);
  auto plan = std::make_unique<MigrationPlan>(
      PlanMigration(*active_->named, *next->named, cost, traffic));

  if (plan->empty()) {
    // The horizon planner kept the schema across this boundary; adopt the
    // window's plans in place — no data movement, no availability gap.
    active_ = std::move(next);
    current_window_ = target;
    active_mix_ = planned_[target].mix;
    tracker_.SetAdvised(ActiveWeights());
    ++report_.no_op_readvises;
    return Status::Ok();
  }

  pending_record_.builds = plan->build_indices.size();
  pending_record_.keeps = plan->keep_names.size();
  pending_record_.drops = plan->drop_names.size();
  pending_record_.est_build_cost_ms = plan->est_build_cost_ms;
  pending_record_.est_drop_cost_ms = plan->est_drop_cost_ms;
  pending_record_.est_dual_write_cost_ms = plan->est_dual_write_cost_ms;
  pending_ = std::move(next);
  mig_plan_ = std::move(plan);
  migration_ = std::make_unique<MigrationExecutor>(
      data_, &store_, pending_->named.get(), active_->executor.get(),
      pending_->executor.get(), &active_->query_plans, &pending_->query_plans,
      &pending_->update_plans, mig_plan_.get(), options_.migration);
  Status prepared = migration_->Prepare();
  if (!prepared.ok()) {
    AbortMigration();
    return prepared;
  }
  obs::MetricsRegistry::Global()
      .GetCounter("evolve.migrations_started")
      .Increment();
  return Status::Ok();
}

Status EvolveController::StartReadvise() {
  obs::Span span("evolve.readvise", "evolve");
  for (const auto& [name, weight] : tracker_.estimate()) {
    NOSE_RETURN_IF_ERROR(
        workload_->SetWeight(name, options_.observed_mix, weight));
  }
  auto advise = advisor_.Advise(*workload_, options_.observed_mix);
  if (!advise.ok()) return advise.status();
  ReadviseResult result = std::move(advise).value();
  if (result.incremental) {
    ++report_.re_advises_incremental;
  } else {
    ++report_.re_advises_cold;
  }
  pending_record_ = MigrationRecord();
  pending_record_.started_at_transaction = report_.transactions;
  pending_record_.advise_incremental = result.incremental;
  pending_record_.advise_seconds = result.seconds;
  pending_record_.drift_at_trigger = tracker_.drift();

  auto next = MakeGeneration(std::move(result.rec), active_->named.get());
  CostModel cost(options_.advisor.cost_params);
  // Reactive migrations run under the drift-estimated mix just written
  // into observed_mix — price dual writes with its update share.
  MigrationTraffic traffic;
  traffic.update_weight_share =
      UpdateWeightShare(*workload_, options_.observed_mix);
  traffic.chunk_rows = static_cast<double>(options_.migration.chunk_rows);
  auto plan = std::make_unique<MigrationPlan>(
      PlanMigration(*active_->named, *next->named, cost, traffic));

  if (plan->empty()) {
    // Identical schema: the fresh plans only re-rank equal-cost paths, so
    // adopt them in place — no data movement, no availability gap.
    active_ = std::move(next);
    active_mix_ = options_.observed_mix;
    tracker_.SetAdvised(ActiveWeights());
    ++report_.no_op_readvises;
    return Status::Ok();
  }

  pending_record_.builds = plan->build_indices.size();
  pending_record_.keeps = plan->keep_names.size();
  pending_record_.drops = plan->drop_names.size();
  pending_record_.est_build_cost_ms = plan->est_build_cost_ms;
  pending_record_.est_drop_cost_ms = plan->est_drop_cost_ms;
  pending_record_.est_dual_write_cost_ms = plan->est_dual_write_cost_ms;
  pending_ = std::move(next);
  mig_plan_ = std::move(plan);
  migration_ = std::make_unique<MigrationExecutor>(
      data_, &store_, pending_->named.get(), active_->executor.get(),
      pending_->executor.get(), &active_->query_plans, &pending_->query_plans,
      &pending_->update_plans, mig_plan_.get(), options_.migration);
  Status prepared = migration_->Prepare();
  if (!prepared.ok()) {
    AbortMigration();
    return prepared;
  }
  obs::MetricsRegistry::Global()
      .GetCounter("evolve.migrations_started")
      .Increment();
  return Status::Ok();
}

Status EvolveController::AdvanceMigration() {
  Status s = migration_->Step(update_log_, query_log_);
  if (!s.ok()) {
    AbortMigration();
    return s;
  }
  if (migration_->phase() == MigrationPhase::kReadyForCutover) {
    return Cutover();
  }
  return Status::Ok();
}

Status EvolveController::Cutover() {
  obs::Span span("evolve.cutover", "evolve");
  const MigrationProgress& prog = migration_->progress();
  pending_record_.finished_at_transaction = report_.transactions;
  pending_record_.rows_backfilled = prog.rows_backfilled;
  pending_record_.catchup_updates = prog.catchup_updates;
  pending_record_.dual_writes = prog.dual_writes;
  pending_record_.verify_queries = prog.verify_queries;
  pending_record_.verify_mismatches = prog.verify_mismatches;
  pending_record_.actual_ms = prog.simulated_ms;

  std::unique_ptr<Generation> old = std::move(active_);
  active_ = std::move(pending_);
  if (pending_record_.planned) {
    current_window_ = pending_record_.to_window;
    active_mix_ = planned_[current_window_].mix;
  } else {
    active_mix_ = options_.observed_mix;
  }
  for (const std::string& name : mig_plan_->drop_names) {
    NOSE_RETURN_IF_ERROR(store_.DropColumnFamily(name));
  }
  migration_->FinishCutover();
  migration_.reset();
  mig_plan_.reset();
  old.reset();
  ++generation_;
  tracker_.SetAdvised(ActiveWeights());
  report_.migrations.push_back(pending_record_);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("evolve.migrations_completed").Increment();
  reg.GetGauge("evolve.generation").Set(static_cast<double>(generation_));
  return Status::Ok();
}

void EvolveController::AbortMigration() {
  pending_record_.aborted = true;
  pending_record_.finished_at_transaction = report_.transactions;
  if (migration_ != nullptr) {
    const MigrationProgress& prog = migration_->progress();
    pending_record_.rows_backfilled = prog.rows_backfilled;
    pending_record_.verify_queries = prog.verify_queries;
    pending_record_.verify_mismatches = prog.verify_mismatches;
    pending_record_.actual_ms = prog.simulated_ms;
  }
  report_.migrations.push_back(pending_record_);
  // Tear out any half-built column families so the store returns to the
  // pre-migration catalog.
  if (mig_plan_ != nullptr && pending_ != nullptr) {
    for (size_t i : mig_plan_->build_indices) {
      const std::string& name = pending_->named->names()[i];
      if (store_.HasColumnFamily(name)) {
        (void)store_.DropColumnFamily(name);
      }
    }
  }
  migration_.reset();
  mig_plan_.reset();
  pending_.reset();
  obs::MetricsRegistry::Global()
      .GetCounter("evolve.migrations_aborted")
      .Increment();
}

void EvolveController::CheckInvariants() {
  obs::MetricsRegistry::Global()
      .GetCounter("evolve.invariant_checks")
      .Increment();
  size_t violations = 0;
  auto check_step = [&](const PlanStep& step) {
    const std::string* name = step.cf_id != kInvalidCfId
                                  ? active_->named->NameOfId(step.cf_id)
                                  : nullptr;
    if (name == nullptr) name = active_->named->NameOf(*step.cf);
    if (name == nullptr || !store_.HasColumnFamily(*name)) ++violations;
  };
  auto check_query_plan = [&](const QueryPlan& plan) {
    for (const PlanStep& step : plan.steps) check_step(step);
  };
  for (const auto& [entry, weight] : workload_->EntriesIn(active_mix_)) {
    if (entry->IsQuery()) {
      auto it = active_->query_plans.find(entry->name);
      if (it == active_->query_plans.end()) {
        ++violations;
        continue;
      }
      check_query_plan(it->second);
    } else {
      auto it = active_->update_plans.find(entry->name);
      if (it == active_->update_plans.end()) {
        ++violations;
        continue;
      }
      for (const UpdatePlanPart& part : it->second.parts) {
        const std::string* name = part.cf_id != kInvalidCfId
                                      ? active_->named->NameOfId(part.cf_id)
                                      : nullptr;
        if (name == nullptr) name = active_->named->NameOf(*part.cf);
        if (name == nullptr || !store_.HasColumnFamily(*name)) ++violations;
        for (const QueryPlan& support : part.support_plans) {
          check_query_plan(support);
        }
      }
    }
  }
  if (violations > 0) {
    report_.invariant_violations += violations;
    obs::MetricsRegistry::Global()
        .GetCounter("evolve.invariant_violations")
        .Add(violations);
  }
}

Status EvolveController::Finish() {
  size_t guard = 0;
  while (migration_ != nullptr) {
    if (++guard > 10'000'000) {
      return Status::Internal("migration did not converge");
    }
    NOSE_RETURN_IF_ERROR(AdvanceMigration());
  }
  return Status::Ok();
}

std::string EvolveReport::ToString() const {
  std::ostringstream out;
  out << "transactions: " << transactions << "\n"
      << "statements: " << statements << "\n"
      << "re-advises: " << re_advises_incremental << " incremental, "
      << re_advises_cold << " cold, " << no_op_readvises << " no-op\n"
      << "last drift: " << last_drift << "\n"
      << "invariant violations: " << invariant_violations << "\n"
      << "migrations: " << migrations.size() << "\n";
  for (size_t i = 0; i < migrations.size(); ++i) {
    const MigrationRecord& m = migrations[i];
    out << "  [" << i << "] txn " << m.started_at_transaction << " -> "
        << m.finished_at_transaction << (m.aborted ? " ABORTED" : "") << ": "
        << m.builds << " build / " << m.keeps << " keep / " << m.drops
        << " drop, backfilled " << m.rows_backfilled << " rows, caught up "
        << m.catchup_updates << " updates, " << m.dual_writes
        << " dual writes, verified " << m.verify_queries << " queries ("
        << m.verify_mismatches << " mismatches), est "
        << m.est_build_cost_ms + m.est_drop_cost_ms + m.est_dual_write_cost_ms
        << " ms, actual " << m.actual_ms << " ms, ";
    if (m.planned) {
      out << "planned -> window " << m.to_window;
    } else {
      out << "advise " << (m.advise_incremental ? "incremental" : "cold")
          << " in " << m.advise_seconds * 1e3 << " ms, drift "
          << m.drift_at_trigger;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace nose::evolve
