#include "evolve/scenario.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace nose::evolve {

StatusOr<DriftScenario> ParseScenario(const std::string& text,
                                      const std::string& source) {
  DriftScenario scenario;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;

  // Same "file:12: message" shape as SourceLocation::ToString, so scenario
  // errors read like the rest of the toolchain's diagnostics.
  auto malformed = [&](const std::string& what) {
    return Status::InvalidArgument(source + ":" + std::to_string(lineno) +
                                   ": " + what);
  };

  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key)) continue;

    auto number = [&](double* out) -> Status {
      double v;
      if (!(tokens >> v)) return malformed("expected a number");
      *out = v;
      return Status::Ok();
    };
    auto count = [&](size_t* out) -> Status {
      double v = 0.0;
      NOSE_RETURN_IF_ERROR(number(&v));
      if (v < 0.0) return malformed("expected a non-negative count");
      *out = static_cast<size_t>(v);
      return Status::Ok();
    };

    if (key == "workload") {
      if (!(tokens >> scenario.workload)) {
        return malformed("expected a workload name");
      }
    } else if (key == "scale") {
      NOSE_RETURN_IF_ERROR(number(&scenario.scale));
      if (scenario.scale <= 0.0) return malformed("scale must be > 0");
    } else if (key == "seed") {
      size_t seed = 0;
      NOSE_RETURN_IF_ERROR(count(&seed));
      scenario.seed = seed;
    } else if (key == "mode") {
      std::string mode;
      if (!(tokens >> mode)) {
        return malformed("expected 'planned' or 'reactive'");
      }
      if (mode == "planned") {
        scenario.planned = true;
      } else if (mode == "reactive") {
        scenario.planned = false;
      } else {
        return malformed("unknown mode '" + mode +
                         "' (want 'planned' or 'reactive')");
      }
    } else if (key == "migration-weight") {
      NOSE_RETURN_IF_ERROR(number(&scenario.migration_cost_weight));
      if (scenario.migration_cost_weight < 0.0) {
        return malformed("migration-weight must be >= 0");
      }
    } else if (key == "window") {
      NOSE_RETURN_IF_ERROR(count(&scenario.options.tracker.window));
    } else if (key == "alpha") {
      NOSE_RETURN_IF_ERROR(number(&scenario.options.tracker.alpha));
    } else if (key == "threshold") {
      NOSE_RETURN_IF_ERROR(number(&scenario.options.tracker.threshold));
    } else if (key == "trigger-windows") {
      size_t n = 0;
      NOSE_RETURN_IF_ERROR(count(&n));
      scenario.options.tracker.trigger_windows = static_cast<int>(n);
    } else if (key == "cooldown-windows") {
      NOSE_RETURN_IF_ERROR(count(&scenario.options.tracker.cooldown_windows));
    } else if (key == "chunk-rows") {
      NOSE_RETURN_IF_ERROR(count(&scenario.options.migration.chunk_rows));
    } else if (key == "catchup-batch") {
      NOSE_RETURN_IF_ERROR(count(&scenario.options.migration.catchup_batch));
    } else if (key == "verify-samples") {
      NOSE_RETURN_IF_ERROR(count(&scenario.options.migration.verify_samples));
    } else if (key == "query-log") {
      NOSE_RETURN_IF_ERROR(count(&scenario.options.query_log_capacity));
    } else if (key == "phase") {
      DriftPhase phase;
      if (!(tokens >> phase.mix)) return malformed("expected a mix");
      NOSE_RETURN_IF_ERROR(count(&phase.transactions));
      if (phase.transactions == 0) {
        return malformed("phase must run at least one transaction");
      }
      scenario.phases.push_back(std::move(phase));
    } else {
      return malformed("unknown directive '" + key + "'");
    }

    std::string extra;
    if (tokens >> extra) {
      return malformed("unexpected trailing token '" + extra + "' after '" +
                       key + "'");
    }
  }
  if (scenario.phases.empty()) {
    return Status::InvalidArgument(source + ": scenario has no phases");
  }
  return scenario;
}

StatusOr<DriftScenario> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open scenario file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return ParseScenario(text.str(), path);
}

}  // namespace nose::evolve
