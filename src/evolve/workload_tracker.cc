#include "evolve/workload_tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"

namespace nose::evolve {

namespace {

void Normalize(std::map<std::string, double>* dist) {
  double sum = 0.0;
  for (const auto& [name, w] : *dist) sum += w;
  if (sum <= 0.0) return;
  for (auto& [name, w] : *dist) w /= sum;
}

}  // namespace

double TotalVariation(const std::map<std::string, double>& a,
                      const std::map<std::string, double>& b) {
  double tv = 0.0;
  for (const auto& [name, av] : a) {
    auto it = b.find(name);
    const double bv = it == b.end() ? 0.0 : it->second;
    tv += std::abs(av - bv);
  }
  for (const auto& [name, bv] : b) {
    if (a.count(name) == 0) tv += bv;
  }
  return 0.5 * tv;
}

void WorkloadTracker::SetAdvised(const std::map<std::string, double>& weights) {
  advised_ = weights;
  Normalize(&advised_);
  estimate_ = advised_;
  window_counts_.clear();
  window_size_ = 0;
  drift_ = 0.0;
  consecutive_over_ = 0;
  cooldown_left_ = options_.cooldown_windows;
  trigger_ = false;
  obs::MetricsRegistry::Global().GetGauge("evolve.drift").Set(0.0);
}

void WorkloadTracker::Record(const std::string& statement,
                             double simulated_ms) {
  ++statements_recorded_;
  total_simulated_ms_ += simulated_ms;
  ++window_counts_[statement];
  if (++window_size_ >= options_.window) CloseWindow();
}

void WorkloadTracker::CloseWindow() {
  ++windows_closed_;
  const double n = static_cast<double>(window_size_);
  // Raw window frequencies feed the forecaster before any smoothing.
  std::map<std::string, double> raw;
  for (const auto& [name, count] : window_counts_) {
    raw[name] = static_cast<double>(count) / n;
  }
  if (!next_forecast_.empty()) {
    forecast_residual_ = TotalVariation(raw, next_forecast_);
    obs::MetricsRegistry::Global()
        .GetGauge("evolve.forecast_residual")
        .Set(forecast_residual_);
  }
  history_.push_back(raw);
  while (history_.size() > options_.history_capacity) history_.pop_front();
  next_forecast_ = ForecastWindow(0);
  // Blend the window's empirical frequencies into the estimate over the
  // union of statement names; absent statements blend toward zero but
  // never reach it (the estimate was seeded from the advised weights).
  for (auto& [name, est] : estimate_) {
    auto it = window_counts_.find(name);
    const double freq =
        it == window_counts_.end() ? 0.0 : static_cast<double>(it->second) / n;
    est = (1.0 - options_.alpha) * est + options_.alpha * freq;
  }
  for (const auto& [name, count] : window_counts_) {
    if (estimate_.count(name) == 0) {
      estimate_[name] = options_.alpha * static_cast<double>(count) / n;
    }
  }
  Normalize(&estimate_);
  window_counts_.clear();
  window_size_ = 0;

  drift_ = TotalVariation(estimate_, advised_);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("evolve.drift").Set(drift_);
  reg.GetCounter("evolve.windows_closed").Increment();

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    consecutive_over_ = 0;
    return;
  }
  if (drift_ > options_.threshold) {
    if (++consecutive_over_ >= options_.trigger_windows) {
      trigger_ = true;
      reg.GetCounter("evolve.drift_triggers").Increment();
    }
  } else {
    consecutive_over_ = 0;
  }
}

size_t WorkloadTracker::DetectPeriod() const {
  const size_t h = history_.size();
  const size_t max_p = std::min(options_.max_period, h / 2);
  size_t best_p = 1;
  double best_mean = std::numeric_limits<double>::infinity();
  for (size_t p = 1; p <= max_p; ++p) {
    double sum = 0.0;
    size_t pairs = 0;
    for (size_t i = 0; i + p < h; ++i) {
      sum += TotalVariation(history_[i], history_[i + p]);
      ++pairs;
    }
    if (pairs == 0) continue;
    const double mean = sum / static_cast<double>(pairs);
    // Strict '<' ties to the smallest period: a stationary workload, where
    // every lag looks alike, reports period 1 instead of a harmonic.
    if (mean < best_mean) {
      best_mean = mean;
      best_p = p;
    }
  }
  return best_p;
}

std::map<std::string, double> WorkloadTracker::ForecastWindow(size_t k) const {
  if (history_.empty()) return estimate_;
  const size_t h = history_.size();
  const size_t p = DetectPeriod();
  // The k-th future window has absolute index h + k; average the history
  // windows congruent to it mod p (the same phase of the cycle).
  std::map<std::string, double> forecast;
  size_t used = 0;
  for (size_t j = 0; j < h; ++j) {
    if ((h + k - j) % p != 0) continue;
    for (const auto& [name, freq] : history_[j]) forecast[name] += freq;
    ++used;
  }
  if (used == 0) {
    // Degenerate phase (cannot happen for p <= h, but keep it total).
    return estimate_;
  }
  for (auto& [name, freq] : forecast) {
    freq /= static_cast<double>(used);
  }
  Normalize(&forecast);
  return forecast;
}

std::vector<std::map<std::string, double>> WorkloadTracker::ForecastHorizon(
    size_t num_windows) const {
  std::vector<std::map<std::string, double>> horizon;
  horizon.reserve(num_windows);
  for (size_t k = 0; k < num_windows; ++k) {
    horizon.push_back(ForecastWindow(k));
  }
  return horizon;
}

bool WorkloadTracker::ShouldReadvise() {
  if (!trigger_) return false;
  trigger_ = false;
  consecutive_over_ = 0;
  cooldown_left_ = options_.cooldown_windows;
  return true;
}

}  // namespace nose::evolve
