#include "evolve/workload_tracker.h"

#include <cmath>

#include "obs/metrics.h"

namespace nose::evolve {

namespace {

void Normalize(std::map<std::string, double>* dist) {
  double sum = 0.0;
  for (const auto& [name, w] : *dist) sum += w;
  if (sum <= 0.0) return;
  for (auto& [name, w] : *dist) w /= sum;
}

}  // namespace

void WorkloadTracker::SetAdvised(const std::map<std::string, double>& weights) {
  advised_ = weights;
  Normalize(&advised_);
  estimate_ = advised_;
  window_counts_.clear();
  window_size_ = 0;
  drift_ = 0.0;
  consecutive_over_ = 0;
  cooldown_left_ = options_.cooldown_windows;
  trigger_ = false;
  obs::MetricsRegistry::Global().GetGauge("evolve.drift").Set(0.0);
}

void WorkloadTracker::Record(const std::string& statement,
                             double simulated_ms) {
  ++statements_recorded_;
  total_simulated_ms_ += simulated_ms;
  ++window_counts_[statement];
  if (++window_size_ >= options_.window) CloseWindow();
}

void WorkloadTracker::CloseWindow() {
  ++windows_closed_;
  const double n = static_cast<double>(window_size_);
  // Blend the window's empirical frequencies into the estimate over the
  // union of statement names; absent statements blend toward zero but
  // never reach it (the estimate was seeded from the advised weights).
  for (auto& [name, est] : estimate_) {
    auto it = window_counts_.find(name);
    const double freq =
        it == window_counts_.end() ? 0.0 : static_cast<double>(it->second) / n;
    est = (1.0 - options_.alpha) * est + options_.alpha * freq;
  }
  for (const auto& [name, count] : window_counts_) {
    if (estimate_.count(name) == 0) {
      estimate_[name] = options_.alpha * static_cast<double>(count) / n;
    }
  }
  Normalize(&estimate_);
  window_counts_.clear();
  window_size_ = 0;

  drift_ = 0.0;
  for (const auto& [name, est] : estimate_) {
    auto it = advised_.find(name);
    const double adv = it == advised_.end() ? 0.0 : it->second;
    drift_ += std::abs(est - adv);
  }
  for (const auto& [name, adv] : advised_) {
    if (estimate_.count(name) == 0) drift_ += adv;
  }
  drift_ *= 0.5;

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("evolve.drift").Set(drift_);
  reg.GetCounter("evolve.windows_closed").Increment();

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    consecutive_over_ = 0;
    return;
  }
  if (drift_ > options_.threshold) {
    if (++consecutive_over_ >= options_.trigger_windows) {
      trigger_ = true;
      reg.GetCounter("evolve.drift_triggers").Increment();
    }
  } else {
    consecutive_over_ = 0;
  }
}

bool WorkloadTracker::ShouldReadvise() {
  if (!trigger_) return false;
  trigger_ = false;
  consecutive_over_ = 0;
  cooldown_left_ = options_.cooldown_windows;
  return true;
}

}  // namespace nose::evolve
