#ifndef NOSE_EVOLVE_SCENARIO_H_
#define NOSE_EVOLVE_SCENARIO_H_

#include <string>
#include <vector>

#include "evolve/evolve.h"
#include "util/statusor.h"

namespace nose::evolve {

/// One phase of a drift scenario: sample transactions from `mix` for
/// `transactions` transactions.
struct DriftPhase {
  std::string mix;
  size_t transactions = 0;
};

/// A parsed drift scenario file. Line-based format, `#` comments:
///   workload rubis
///   scale 0.05
///   seed 42
///   window 32
///   alpha 0.3
///   threshold 0.08
///   trigger-windows 2
///   cooldown-windows 2
///   chunk-rows 256
///   catchup-batch 64
///   verify-samples 8
///   query-log 128
///   phase default 300
///   phase browsing 600
struct DriftScenario {
  std::string workload = "rubis";
  double scale = 0.05;
  uint64_t seed = 42;
  EvolveOptions options;
  std::vector<DriftPhase> phases;
};

StatusOr<DriftScenario> ParseScenario(const std::string& text);
StatusOr<DriftScenario> LoadScenarioFile(const std::string& path);

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_SCENARIO_H_
