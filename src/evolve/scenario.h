#ifndef NOSE_EVOLVE_SCENARIO_H_
#define NOSE_EVOLVE_SCENARIO_H_

#include <string>
#include <vector>

#include "evolve/evolve.h"
#include "util/statusor.h"

namespace nose::evolve {

/// One phase of a drift scenario: sample transactions from `mix` for
/// `transactions` transactions.
struct DriftPhase {
  std::string mix;
  size_t transactions = 0;
};

/// A parsed drift scenario file. Line-based format, `#` comments (full-line
/// or trailing); extra tokens after a directive's arguments are an error:
///   workload rubis
///   scale 0.05
///   seed 42
///   mode planned            # or reactive (default)
///   migration-weight 1.0    # multiplier on build costs in planned mode
///   window 32
///   alpha 0.3
///   threshold 0.08
///   trigger-windows 2
///   cooldown-windows 2
///   chunk-rows 256
///   catchup-batch 64
///   verify-samples 8
///   query-log 128
///   phase default 300
///   phase browsing 600
struct DriftScenario {
  std::string workload = "rubis";
  double scale = 0.05;
  uint64_t seed = 42;
  /// Planned mode solves the multi-period horizon BIP up front (one window
  /// per phase) and migrates at the planned phase boundaries; reactive mode
  /// (the default) re-advises on drift triggers.
  bool planned = false;
  /// Multiplier on column-family build costs in the horizon objective.
  double migration_cost_weight = 1.0;
  EvolveOptions options;
  std::vector<DriftPhase> phases;
};

/// Parses a scenario. Errors carry `source`:line: prefixes in the same
/// "file:12: message" convention as analysis diagnostics.
StatusOr<DriftScenario> ParseScenario(const std::string& text,
                                      const std::string& source = "scenario");
StatusOr<DriftScenario> LoadScenarioFile(const std::string& path);

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_SCENARIO_H_
