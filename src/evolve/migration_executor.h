#ifndef NOSE_EVOLVE_MIGRATION_EXECUTOR_H_
#define NOSE_EVOLVE_MIGRATION_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "evolve/migration_planner.h"
#include "executor/dataset.h"
#include "executor/plan_executor.h"
#include "store/record_store.h"
#include "util/thread_pool.h"

namespace nose::evolve {

/// One executed statement with its bound parameters, as logged by the
/// controller. The update log is the full history since the initial load
/// (catch-up replays it to rebuild logical state the dataset does not
/// contain); the query log is a bounded sample used by verification.
struct LoggedStatement {
  std::string statement;
  PlanExecutor::Params params;
};

enum class MigrationPhase {
  kBackfill,         ///< chunked loads of the new column families
  kCatchUp,          ///< replaying the update log into the new generation
  kDualWrite,        ///< soak: updates applied to both generations
  kVerify,           ///< sampled queries compared old vs. new
  kReadyForCutover,  ///< verified; controller may cut over
  kDone,
  kFailed,
};

struct MigrationProgress {
  uint64_t rows_backfilled = 0;
  uint64_t chunks = 0;
  uint64_t catchup_updates = 0;
  uint64_t dual_writes = 0;
  uint64_t verify_queries = 0;
  uint64_t verify_mismatches = 0;
  uint64_t verify_skipped = 0;
  /// Simulated store milliseconds charged by migration work (backfill +
  /// catch-up + dual writes + verification reads).
  double simulated_ms = 0.0;
};

/// Executes one migration plan against the live store in bounded steps.
///
/// Single-threaded (evolve loop) use: the controller calls Step() between
/// transactions (one backfill chunk / catch-up batch / verify pass per
/// call) and OnUpdate() after every executed update so the new generation
/// stays in sync once dual-writing starts.
///
/// Concurrent (serve loop) use: a migration worker drives
/// BackfillAll/ReplayRange/BeginDualWrite/TryVerify/MarkReadyForCutover
/// while driver threads execute foreground statements and call OnUpdate
/// concurrently. phase() is atomic and progress() snapshots under a lock,
/// so both are safe from any thread; the caller is responsible for the
/// replay-vs-dual-write handoff (every update either lands in the replayed
/// log prefix or is OnUpdate'd after BeginDualWrite, never both — see
/// serve/ServeHarness).
///
/// Safety: backfill and catch-up write only new-generation column
/// families, so queries served from the old generation are untouched until
/// the controller cuts over — and cutover is only offered after every
/// sampled query returned identical rows from both generations.
class MigrationExecutor {
 public:
  struct Options {
    size_t chunk_rows = 256;       ///< root rows per backfill chunk
    size_t catchup_batch = 64;     ///< log entries replayed per Step
    size_t min_dual_write_steps = 2;
    size_t verify_samples = 16;    ///< logged queries compared at verify
  };

  /// All pointers are borrowed and must outlive the executor. `new_schema`
  /// maps the new generation's column families to store names; build-set
  /// column families are created here.
  MigrationExecutor(const Dataset* data, RecordStore* store,
                    const Schema* new_schema, PlanExecutor* old_executor,
                    PlanExecutor* new_executor,
                    const std::map<std::string, QueryPlan>* old_query_plans,
                    const std::map<std::string, QueryPlan>* new_query_plans,
                    const std::map<std::string, UpdatePlan>* new_update_plans,
                    const MigrationPlan* plan, Options options);

  /// Creates the build-set column families and derives the replay plans
  /// (new-generation update plans filtered to build-set parts). Must be
  /// called once before Step; separate from the constructor so creation
  /// errors surface.
  Status Prepare();

  /// Advances one bounded unit of work. `update_log` is the controller's
  /// full update history (append-only); `query_log` the recent-query
  /// sample. Returns an error (and enters kFailed) on verification
  /// mismatch or store failure.
  Status Step(const std::vector<LoggedStatement>& update_log,
              const std::vector<LoggedStatement>& query_log);

  /// Applies one just-executed update to the new generation when the
  /// migration has passed catch-up (phases kDualWrite and later). Earlier
  /// phases rely on the update log instead, so nothing is double-applied:
  /// catch-up replays exactly the entries executed before dual-writing
  /// began. Safe to call from multiple driver threads concurrently.
  Status OnUpdate(const LoggedStatement& entry);

  /// Backfills every build-set column family in one call, fanning the
  /// chunks out over `pool` (serial when null). Disjoint root-row ranges
  /// write disjoint rows, so chunks are independent; the call returns only
  /// once every chunk landed. Transitions kBackfill -> kCatchUp.
  Status BackfillAll(util::ThreadPool* pool);

  /// Replays update-log entries [begin, end) into the new generation
  /// without any phase transition: the serve loop's catch-up primitive,
  /// driven from the migration worker while drivers keep appending.
  Status ReplayRange(const std::vector<LoggedStatement>& update_log,
                     size_t begin, size_t end);

  /// Transitions to kDualWrite. The caller must guarantee (e.g. by holding
  /// its update-log mutex across the final ReplayRange and this call) that
  /// every update before the transition was replayed and every one after
  /// it reaches OnUpdate.
  void BeginDualWrite() { phase_.store(MigrationPhase::kDualWrite); }

  /// One verification pass over the sampled query log: true when every
  /// compared query matched, false on a mismatch (no phase change — under
  /// concurrent foreground writes a mismatch can be a transient between
  /// the old-generation write and its dual write, so the caller retries).
  /// Hard store errors fail the migration as usual.
  StatusOr<bool> TryVerify(const std::vector<LoggedStatement>& query_log);

  /// Marks verification complete; cutover may proceed.
  void MarkReadyForCutover() {
    phase_.store(MigrationPhase::kReadyForCutover);
  }

  /// Marks the cutover done (controller has swapped generations).
  void FinishCutover() { phase_.store(MigrationPhase::kDone); }

  MigrationPhase phase() const { return phase_.load(); }
  MigrationProgress progress() const;

 private:
  Status BackfillStep();
  Status CatchUpStep(const std::vector<LoggedStatement>& update_log);
  Status VerifyStep(const std::vector<LoggedStatement>& query_log);
  Status ReplayUpdate(const LoggedStatement& entry);
  /// Loads root rows [begin, end) of build CF `cf_index`, accounting rows
  /// and simulated charge into progress. Any thread.
  Status BackfillChunk(size_t cf_index, size_t begin, size_t end);

  const Dataset* data_;
  RecordStore* store_;
  const Schema* new_schema_;
  PlanExecutor* old_executor_;
  PlanExecutor* new_executor_;
  const std::map<std::string, QueryPlan>* old_query_plans_;
  const std::map<std::string, QueryPlan>* new_query_plans_;
  const std::map<std::string, UpdatePlan>* new_update_plans_;
  const MigrationPlan* plan_;
  Options options_;

  /// New-generation update plans restricted to parts that write build-set
  /// column families, keyed by statement; statements with no build-set
  /// part are absent. Replay and dual writes maintain ONLY the build set:
  /// kept column families are live in both generations and the foreground
  /// old-generation plans already maintain them — re-applying older log
  /// entries to a kept family would race (and could lose) newer foreground
  /// writes to the same record under concurrent serving.
  std::map<std::string, UpdatePlan> replay_plans_;

  std::atomic<MigrationPhase> phase_{MigrationPhase::kBackfill};
  mutable std::mutex progress_mu_;
  MigrationProgress progress_;     ///< guarded by progress_mu_
  int64_t progress_sim_ns_ = 0;    ///< guarded by progress_mu_
  size_t build_pos_ = 0;    ///< index into plan_->build_indices
  size_t root_cursor_ = 0;  ///< next root row of the current build CF
  size_t replay_pos_ = 0;   ///< next update-log entry to replay
  size_t dual_write_steps_ = 0;
};

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_MIGRATION_EXECUTOR_H_
