#ifndef NOSE_EVOLVE_MIGRATION_EXECUTOR_H_
#define NOSE_EVOLVE_MIGRATION_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "evolve/migration_planner.h"
#include "executor/dataset.h"
#include "executor/plan_executor.h"
#include "store/record_store.h"

namespace nose::evolve {

/// One executed statement with its bound parameters, as logged by the
/// controller. The update log is the full history since the initial load
/// (catch-up replays it to rebuild logical state the dataset does not
/// contain); the query log is a bounded sample used by verification.
struct LoggedStatement {
  std::string statement;
  PlanExecutor::Params params;
};

enum class MigrationPhase {
  kBackfill,         ///< chunked loads of the new column families
  kCatchUp,          ///< replaying the update log into the new generation
  kDualWrite,        ///< soak: updates applied to both generations
  kVerify,           ///< sampled queries compared old vs. new
  kReadyForCutover,  ///< verified; controller may cut over
  kDone,
  kFailed,
};

struct MigrationProgress {
  uint64_t rows_backfilled = 0;
  uint64_t chunks = 0;
  uint64_t catchup_updates = 0;
  uint64_t dual_writes = 0;
  uint64_t verify_queries = 0;
  uint64_t verify_mismatches = 0;
  uint64_t verify_skipped = 0;
  /// Simulated store milliseconds charged by migration work (backfill +
  /// catch-up + dual writes + verification reads).
  double simulated_ms = 0.0;
};

/// Executes one migration plan against the live store in bounded steps.
/// The controller calls Step() between transactions (one backfill chunk /
/// catch-up batch / verify pass per call) and OnUpdate() after every
/// executed update so the new generation stays in sync once dual-writing
/// starts. Safety: backfill and catch-up write only new-generation column
/// families, so queries served from the old generation are untouched until
/// the controller cuts over — and cutover is only offered after every
/// sampled query returned identical rows from both generations.
class MigrationExecutor {
 public:
  struct Options {
    size_t chunk_rows = 256;       ///< root rows per backfill chunk
    size_t catchup_batch = 64;     ///< log entries replayed per Step
    size_t min_dual_write_steps = 2;
    size_t verify_samples = 16;    ///< logged queries compared at verify
  };

  /// All pointers are borrowed and must outlive the executor. `new_schema`
  /// maps the new generation's column families to store names; build-set
  /// column families are created here.
  MigrationExecutor(const Dataset* data, RecordStore* store,
                    const Schema* new_schema, PlanExecutor* old_executor,
                    PlanExecutor* new_executor,
                    const std::map<std::string, QueryPlan>* old_query_plans,
                    const std::map<std::string, QueryPlan>* new_query_plans,
                    const std::map<std::string, UpdatePlan>* new_update_plans,
                    const MigrationPlan* plan, Options options);

  /// Creates the build-set column families. Must be called once before
  /// Step; separate from the constructor so creation errors surface.
  Status Prepare();

  /// Advances one bounded unit of work. `update_log` is the controller's
  /// full update history (append-only); `query_log` the recent-query
  /// sample. Returns an error (and enters kFailed) on verification
  /// mismatch or store failure.
  Status Step(const std::vector<LoggedStatement>& update_log,
              const std::vector<LoggedStatement>& query_log);

  /// Applies one just-executed update to the new generation when the
  /// migration has passed catch-up (phases kDualWrite and later). Earlier
  /// phases rely on the update log instead, so nothing is double-applied:
  /// catch-up replays exactly the entries executed before dual-writing
  /// began.
  Status OnUpdate(const LoggedStatement& entry);

  /// Marks the cutover done (controller has swapped generations).
  void FinishCutover() { phase_ = MigrationPhase::kDone; }

  MigrationPhase phase() const { return phase_; }
  const MigrationProgress& progress() const { return progress_; }

 private:
  Status BackfillStep();
  Status CatchUpStep(const std::vector<LoggedStatement>& update_log);
  Status VerifyStep(const std::vector<LoggedStatement>& query_log);
  Status ReplayUpdate(const LoggedStatement& entry);

  const Dataset* data_;
  RecordStore* store_;
  const Schema* new_schema_;
  PlanExecutor* old_executor_;
  PlanExecutor* new_executor_;
  const std::map<std::string, QueryPlan>* old_query_plans_;
  const std::map<std::string, QueryPlan>* new_query_plans_;
  const std::map<std::string, UpdatePlan>* new_update_plans_;
  const MigrationPlan* plan_;
  Options options_;

  MigrationPhase phase_ = MigrationPhase::kBackfill;
  MigrationProgress progress_;
  size_t build_pos_ = 0;    ///< index into plan_->build_indices
  size_t root_cursor_ = 0;  ///< next root row of the current build CF
  size_t replay_pos_ = 0;   ///< next update-log entry to replay
  size_t dual_write_steps_ = 0;
};

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_MIGRATION_EXECUTOR_H_
