#include "evolve/driver.h"

#include <algorithm>
#include <vector>

#include "rubis/workload.h"

namespace nose::evolve {

namespace {

double MixWeight(const rubis::Transaction& tx, const std::string& mix) {
  if (mix == rubis::kBrowsingMix) return tx.browsing_weight;
  return tx.bidding_weight;
}

}  // namespace

StatusOr<std::unique_ptr<DriftRunner>> DriftRunner::Create(
    const DriftScenario& scenario) {
  if (scenario.workload != "rubis") {
    return Status::Unimplemented("unknown scenario workload " +
                                 scenario.workload);
  }
  std::unique_ptr<DriftRunner> runner(new DriftRunner(scenario));
  auto graph = rubis::MakeGraph(rubis::ScaleFor(scenario.scale));
  if (!graph.ok()) return graph.status();
  runner->graph_ = std::move(graph).value();
  runner->data_ = std::make_unique<Dataset>(rubis::GenerateData(
      runner->graph_.get(), rubis::ScaleFor(scenario.scale), scenario.seed));
  auto workload = rubis::MakeWorkload(*runner->graph_);
  if (!workload.ok()) return workload.status();
  runner->workload_ = std::move(workload).value();
  runner->params_ = std::make_unique<rubis::ParamGenerator>(
      runner->data_.get(), scenario.seed);
  runner->controller_ = std::make_unique<EvolveController>(
      runner->workload_.get(), runner->data_.get(), scenario.options);
  runner->rng_ = Rng(scenario.seed);
  return runner;
}

Status DriftRunner::RunPhase(const DriftPhase& phase) {
  const std::vector<rubis::Transaction>& txs = rubis::Transactions();
  std::vector<double> cumulative;
  cumulative.reserve(txs.size());
  double total = 0.0;
  for (const rubis::Transaction& tx : txs) {
    total += MixWeight(tx, phase.mix);
    cumulative.push_back(total);
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("mix " + phase.mix +
                                   " weights no transaction");
  }

  for (size_t t = 0; t < phase.transactions; ++t) {
    const double pick = rng_.NextDouble() * total;
    size_t chosen = std::lower_bound(cumulative.begin(), cumulative.end(),
                                     pick) -
                    cumulative.begin();
    if (chosen >= txs.size()) chosen = txs.size() - 1;
    const rubis::Transaction& tx = txs[chosen];

    PlanExecutor::Params params;
    for (const std::string& stmt : tx.statements) {
      params_->AddStatementParams(*workload_->FindEntry(stmt), &params);
    }
    for (const std::string& stmt : tx.statements) {
      const WorkloadEntry* entry = workload_->FindEntry(stmt);
      if (entry->IsQuery()) {
        auto rows = controller_->ExecuteQuery(stmt, params);
        if (!rows.ok()) return rows.status();
      } else {
        NOSE_RETURN_IF_ERROR(controller_->ExecuteUpdate(stmt, params));
      }
    }
    NOSE_RETURN_IF_ERROR(controller_->EndTransaction());
  }
  return Status::Ok();
}

Status DriftRunner::PlanAndInit() {
  const std::vector<rubis::Transaction>& txs = rubis::Transactions();
  WorkloadHorizon horizon;
  std::vector<size_t> starts;
  size_t cumulative = 0;
  for (const DriftPhase& phase : scenario_.phases) {
    double mix_weight = 0.0;
    for (const rubis::Transaction& tx : txs) {
      mix_weight += MixWeight(tx, phase.mix);
    }
    if (mix_weight <= 0.0) {
      return Status::InvalidArgument("mix " + phase.mix +
                                     " weights no transaction");
    }
    HorizonWindow window;
    window.label = phase.mix;
    window.mix = phase.mix;
    // One unit of window objective is one pass over the mix's weighted
    // statements, and a sampled transaction costs objective / Σ_tx w_tx in
    // expectation (statement weights are sums of the transaction weights
    // using them). Scaling by transactions / Σ_tx w_tx makes
    // Σ duration·objective the expected total execution milliseconds —
    // commensurable with the migration build costs in the same objective.
    window.duration = static_cast<double>(phase.transactions) / mix_weight;
    horizon.windows.push_back(std::move(window));
    starts.push_back(cumulative);
    cumulative += phase.transactions;
  }

  Advisor advisor(scenario_.options.advisor);
  HorizonPlanOptions horizon_options;
  horizon_options.migration_cost_weight = scenario_.migration_cost_weight;
  // Price scheduled migrations with the chunking the executor will use.
  horizon_options.backfill_chunk_rows =
      static_cast<double>(scenario_.options.migration.chunk_rows);
  auto plan = advisor.PlanHorizon(*workload_, horizon, horizon_options);
  if (!plan.ok()) return plan.status();
  horizon_plan_ = std::make_unique<HorizonPlan>(std::move(*plan));

  std::vector<PlannedWindow> windows;
  windows.reserve(horizon_plan_->windows.size());
  for (size_t w = 0; w < horizon_plan_->windows.size(); ++w) {
    PlannedWindow planned;
    planned.label = horizon_plan_->windows[w].label;
    planned.mix = horizon_plan_->windows[w].mix;
    planned.start_transaction = starts[w];
    // The copied plans point into horizon_plan_->pool, which this runner
    // keeps alive for the controller's lifetime.
    planned.rec = horizon_plan_->windows[w].rec;
    windows.push_back(std::move(planned));
  }
  return controller_->InitPlanned(std::move(windows));
}

Status DriftRunner::Run() {
  if (scenario_.phases.empty()) {
    return Status::InvalidArgument("scenario has no phases");
  }
  if (scenario_.planned) {
    NOSE_RETURN_IF_ERROR(PlanAndInit());
  } else {
    NOSE_RETURN_IF_ERROR(controller_->Init(scenario_.phases.front().mix));
  }
  for (const DriftPhase& phase : scenario_.phases) {
    NOSE_RETURN_IF_ERROR(RunPhase(phase));
  }
  return controller_->Finish();
}

}  // namespace nose::evolve
