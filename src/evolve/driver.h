#ifndef NOSE_EVOLVE_DRIVER_H_
#define NOSE_EVOLVE_DRIVER_H_

#include <memory>
#include <string>

#include "evolve/evolve.h"
#include "evolve/scenario.h"
#include "rubis/datagen.h"
#include "rubis/model.h"
#include "util/statusor.h"

namespace nose::evolve {

/// Owns a drift-scenario run end to end: builds the scenario's environment
/// (currently the RUBiS model, dataset, and workload), drives the
/// controller through each phase by sampling transactions from the phase's
/// mix, and leaves its state (controller, logs, store) open for
/// inspection — the e2e drift test replays the logs against a control
/// store, and the drift bench reads the migration records.
class DriftRunner {
 public:
  static StatusOr<std::unique_ptr<DriftRunner>> Create(
      const DriftScenario& scenario);

  /// Runs every phase, then drives any in-flight migration to completion.
  Status Run();

  EvolveController& controller() { return *controller_; }
  const EvolveReport& report() const { return controller_->report(); }
  Workload& workload() { return *workload_; }
  const Dataset& data() const { return *data_; }
  const EntityGraph& graph() const { return *graph_; }
  const DriftScenario& scenario() const { return scenario_; }

 private:
  explicit DriftRunner(DriftScenario scenario)
      : scenario_(std::move(scenario)) {}

  Status RunPhase(const DriftPhase& phase);

  DriftScenario scenario_;
  std::unique_ptr<EntityGraph> graph_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<rubis::ParamGenerator> params_;
  std::unique_ptr<EvolveController> controller_;
  Rng rng_{0};
};

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_DRIVER_H_
