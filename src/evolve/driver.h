#ifndef NOSE_EVOLVE_DRIVER_H_
#define NOSE_EVOLVE_DRIVER_H_

#include <memory>
#include <string>

#include "advisor/advisor.h"
#include "evolve/evolve.h"
#include "evolve/scenario.h"
#include "rubis/datagen.h"
#include "rubis/model.h"
#include "util/statusor.h"

namespace nose::evolve {

/// Owns a drift-scenario run end to end: builds the scenario's environment
/// (currently the RUBiS model, dataset, and workload), drives the
/// controller through each phase by sampling transactions from the phase's
/// mix, and leaves its state (controller, logs, store) open for
/// inspection — the e2e drift test replays the logs against a control
/// store, and the drift bench reads the migration records.
///
/// With DriftScenario::planned set, the runner first solves the
/// multi-period horizon BIP (one window per phase, windows weighted by
/// their expected transaction volume) and drives the controller through
/// the planned schedule: migrations start at phase boundaries the
/// optimizer chose, not on drift triggers.
class DriftRunner {
 public:
  static StatusOr<std::unique_ptr<DriftRunner>> Create(
      const DriftScenario& scenario);

  /// Runs every phase, then drives any in-flight migration to completion.
  Status Run();

  EvolveController& controller() { return *controller_; }
  const EvolveReport& report() const { return controller_->report(); }
  Workload& workload() { return *workload_; }
  const Dataset& data() const { return *data_; }
  const EntityGraph& graph() const { return *graph_; }
  const DriftScenario& scenario() const { return scenario_; }
  /// The horizon schedule solved up front in planned mode; null in
  /// reactive mode (or before Run). Owns the pool every planned window's
  /// plans point into.
  const HorizonPlan* horizon_plan() const { return horizon_plan_.get(); }

 private:
  explicit DriftRunner(DriftScenario scenario)
      : scenario_(std::move(scenario)) {}

  Status RunPhase(const DriftPhase& phase);
  /// Planned mode: builds the WorkloadHorizon from the phases, solves it,
  /// and hands the schedule to the controller.
  Status PlanAndInit();

  DriftScenario scenario_;
  std::unique_ptr<EntityGraph> graph_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<rubis::ParamGenerator> params_;
  std::unique_ptr<EvolveController> controller_;
  std::unique_ptr<HorizonPlan> horizon_plan_;
  Rng rng_{0};
};

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_DRIVER_H_
