#ifndef NOSE_EVOLVE_WORKLOAD_TRACKER_H_
#define NOSE_EVOLVE_WORKLOAD_TRACKER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace nose::evolve {

struct TrackerOptions {
  /// Statements per observation window; the frequency estimate updates when
  /// a window fills.
  size_t window = 64;
  /// EWMA blend per closed window: est = (1-alpha)*est + alpha*freq.
  double alpha = 0.3;
  /// Total-variation drift (0.5 * sum |est - advised|) above which a window
  /// counts toward a re-advise trigger.
  double threshold = 0.10;
  /// Consecutive over-threshold windows required to trigger.
  int trigger_windows = 2;
  /// Windows to ignore after a trigger is consumed (lets the freshly
  /// advised distribution settle before drifting again).
  size_t cooldown_windows = 2;
  /// Closed windows of raw frequencies retained for horizon forecasting.
  size_t history_capacity = 64;
  /// Longest workload period (in windows) the forecaster will look for.
  size_t max_period = 8;
};

/// Total-variation distance 0.5 · Σ |a − b| over the union of keys — the
/// drift metric, the forecast-residual metric, and the period detector's
/// window-similarity measure are all this one distance.
double TotalVariation(const std::map<std::string, double>& a,
                      const std::map<std::string, double>& b);

/// Windowed statement-frequency estimator feeding the re-advise loop: the
/// executor reports each executed statement, the tracker folds full windows
/// into an EWMA frequency estimate, and when the estimate's total-variation
/// distance from the advised distribution stays above threshold for
/// `trigger_windows` consecutive windows it raises a re-advise trigger.
/// The estimate is seeded from the advised weights, so statements that stop
/// appearing decay geometrically instead of dropping to exact zero — the
/// observed mix keeps the full statement set and incremental re-advising
/// can reuse the interned candidate pool.
class WorkloadTracker {
 public:
  explicit WorkloadTracker(TrackerOptions options = TrackerOptions())
      : options_(options) {}

  /// Installs the advised distribution (statement -> weight; weights are
  /// normalized here). Resets the estimate, drift, and trigger state.
  void SetAdvised(const std::map<std::string, double>& weights);

  /// Records one executed statement (`simulated_ms` is accumulated for
  /// reporting only).
  void Record(const std::string& statement, double simulated_ms = 0.0);

  /// True when drift has persisted long enough to warrant re-advising.
  /// Consuming the trigger resets it and starts the cooldown.
  bool ShouldReadvise();

  /// Dominant workload period in windows, detected from the raw-frequency
  /// history: the p ∈ [1, min(max_period, history/2)] minimizing the mean
  /// total-variation distance between windows p apart (ties to the
  /// smallest p, so a stationary workload reports 1). Returns 1 until two
  /// full windows of history exist.
  size_t DetectPeriod() const;

  /// Forecast distribution for the k-th FUTURE window (k = 0 is the next
  /// window to close): the average of the history windows in the same
  /// phase of the detected period, normalized. Falls back to the current
  /// EWMA estimate while the history is empty.
  std::map<std::string, double> ForecastWindow(size_t k) const;

  /// Per-window forecasts for the next `num_windows` windows — the input
  /// the horizon planner turns into a WorkloadHorizon.
  std::vector<std::map<std::string, double>> ForecastHorizon(
      size_t num_windows) const;

  /// Total-variation distance between the last closed window's observed
  /// frequencies and the one-step forecast made when the previous window
  /// closed (0 until two windows have closed). Also exported as the
  /// `evolve.forecast_residual` gauge.
  double forecast_residual() const { return forecast_residual_; }
  size_t history_size() const { return history_.size(); }

  /// Latest total-variation distance between estimate and advised.
  double drift() const { return drift_; }
  /// Current EWMA frequency estimate (normalized).
  const std::map<std::string, double>& estimate() const { return estimate_; }
  uint64_t windows_closed() const { return windows_closed_; }
  uint64_t statements_recorded() const { return statements_recorded_; }
  double total_simulated_ms() const { return total_simulated_ms_; }

 private:
  void CloseWindow();

  TrackerOptions options_;
  std::map<std::string, double> advised_;
  std::map<std::string, double> estimate_;
  std::map<std::string, size_t> window_counts_;
  size_t window_size_ = 0;
  double drift_ = 0.0;
  int consecutive_over_ = 0;
  size_t cooldown_left_ = 0;
  bool trigger_ = false;
  uint64_t windows_closed_ = 0;
  uint64_t statements_recorded_ = 0;
  double total_simulated_ms_ = 0.0;
  /// Raw (un-smoothed) normalized frequencies of the most recent closed
  /// windows, oldest first — the EWMA would blur exactly the periodicity
  /// the forecaster looks for.
  std::deque<std::map<std::string, double>> history_;
  std::map<std::string, double> next_forecast_;
  double forecast_residual_ = 0.0;
};

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_WORKLOAD_TRACKER_H_
