#ifndef NOSE_EVOLVE_EVOLVE_H_
#define NOSE_EVOLVE_EVOLVE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "evolve/incremental_advisor.h"
#include "evolve/migration_executor.h"
#include "evolve/migration_planner.h"
#include "evolve/workload_tracker.h"
#include "executor/dataset.h"
#include "executor/loader.h"
#include "executor/plan_executor.h"
#include "store/record_store.h"

namespace nose::evolve {

struct EvolveOptions {
  TrackerOptions tracker;
  MigrationExecutor::Options migration;
  AdvisorOptions advisor;
  /// Reserved mix name the tracker's observed weights are written into
  /// before each re-advise.
  std::string observed_mix = "__observed";
  /// Recent queries kept for migration verification.
  size_t query_log_capacity = 128;
};

/// Outcome of one completed (or aborted) migration.
struct MigrationRecord {
  size_t started_at_transaction = 0;
  size_t finished_at_transaction = 0;
  size_t builds = 0;
  size_t keeps = 0;
  size_t drops = 0;
  uint64_t rows_backfilled = 0;
  uint64_t catchup_updates = 0;
  uint64_t dual_writes = 0;
  uint64_t verify_queries = 0;
  uint64_t verify_mismatches = 0;
  double est_build_cost_ms = 0.0;
  /// Estimated drop + dual-write charges (shared horizon pricing), so the
  /// estimate is commensurable with actual_ms — which includes both.
  double est_drop_cost_ms = 0.0;
  double est_dual_write_cost_ms = 0.0;
  double actual_ms = 0.0;  ///< simulated store ms charged by the migration
  bool advise_incremental = false;
  double advise_seconds = 0.0;
  double drift_at_trigger = 0.0;
  bool aborted = false;
  /// True when the migration was scheduled by the horizon planner (planned
  /// mode) rather than raised by a drift trigger.
  bool planned = false;
  /// Planned mode: index of the horizon window this migration deploys.
  size_t to_window = 0;
};

/// One window of a precomputed horizon schedule handed to InitPlanned. The
/// recommendation's plans may point into a pool owned elsewhere (the
/// advisor's HorizonPlan) — that owner must outlive the controller.
struct PlannedWindow {
  std::string label;
  std::string mix;
  /// Transaction count at which this window's schema should be live; the
  /// migration toward it starts at this boundary.
  size_t start_transaction = 0;
  Recommendation rec;
};

struct EvolveReport {
  size_t transactions = 0;
  size_t statements = 0;
  size_t re_advises_incremental = 0;
  size_t re_advises_cold = 0;
  /// Re-advises whose schema matched the active one (adopted in place, no
  /// data movement).
  size_t no_op_readvises = 0;
  double last_drift = 0.0;
  size_t invariant_violations = 0;
  std::vector<MigrationRecord> migrations;

  std::string ToString() const;
};

/// The online schema-evolution loop (tracker -> re-advise -> migrate):
/// routes application statements through the active generation's plans,
/// feeds the workload tracker, and when drift triggers, re-advises
/// incrementally, diffs the schemas into a migration plan, and executes it
/// live (dual-write + chunked backfill + verify-then-cutover) while
/// continuing to serve statements from the old generation.
class EvolveController {
 public:
  /// `workload` is mutated: observed weights are written into
  /// options.observed_mix before each re-advise. Both pointers must
  /// outlive the controller.
  EvolveController(Workload* workload, const Dataset* data,
                   EvolveOptions options = EvolveOptions());
  ~EvolveController();

  /// Advises `initial_mix`, loads the recommended schema, and starts
  /// tracking against its weights.
  Status Init(const std::string& initial_mix);

  /// Planned (horizon) mode: deploys windows[0] as the initial schema and
  /// migrates at each window's start_transaction boundary instead of on
  /// drift triggers. The windows' plans may point into a caller-owned pool
  /// that must outlive the controller (see PlannedWindow).
  Status InitPlanned(std::vector<PlannedWindow> windows);

  /// Executes one statement of the application workload through the active
  /// generation.
  StatusOr<std::vector<ValueTuple>> ExecuteQuery(
      const std::string& statement, const PlanExecutor::Params& params);
  Status ExecuteUpdate(const std::string& statement,
                       const PlanExecutor::Params& params);

  /// Transaction boundary: advances an in-flight migration by one bounded
  /// step, or checks the drift trigger and starts one. Also spot-checks the
  /// availability invariant (every active statement's plan resolves to live
  /// store column families).
  Status EndTransaction();

  /// Drives any in-flight migration to completion (or failure).
  Status Finish();

  bool migration_in_progress() const { return migration_ != nullptr; }
  const EvolveReport& report() const { return report_; }
  const WorkloadTracker& tracker() const { return tracker_; }

  /// Active-generation internals, exposed for tests and benchmarks.
  const Recommendation& active_rec() const { return active_->rec; }
  const Schema& active_schema() const { return *active_->named; }
  const std::map<std::string, QueryPlan>& active_query_plans() const {
    return active_->query_plans;
  }
  const std::map<std::string, UpdatePlan>& active_update_plans() const {
    return active_->update_plans;
  }
  RecordStore* store() { return &store_; }
  const std::vector<LoggedStatement>& update_log() const {
    return update_log_;
  }
  const std::vector<LoggedStatement>& query_log() const { return query_log_; }
  const std::string& active_mix() const { return active_mix_; }
  bool planned_mode() const { return planned_mode_; }
  /// Planned mode: index of the horizon window currently deployed.
  size_t current_window() const { return current_window_; }

 private:
  /// One schema generation: recommendation, store-named schema, plans
  /// keyed by statement, executor. The named schema lives behind a
  /// unique_ptr so the executor's pointer survives generation swaps.
  struct Generation {
    Recommendation rec;
    std::unique_ptr<Schema> named;
    std::map<std::string, QueryPlan> query_plans;
    std::map<std::string, UpdatePlan> update_plans;
    std::unique_ptr<PlanExecutor> executor;
  };

  std::unique_ptr<Generation> MakeGeneration(Recommendation rec,
                                             const Schema* reuse_names_from);
  Status StartReadvise();
  Status StartPlannedMigration(size_t target);
  Status AdvanceMigration();
  Status Cutover();
  void AbortMigration();
  void CheckInvariants();
  std::map<std::string, double> ActiveWeights() const;

  Workload* workload_;
  const Dataset* data_;
  EvolveOptions options_;

  IncrementalAdvisor advisor_;
  WorkloadTracker tracker_;
  RecordStore store_;

  std::unique_ptr<Generation> active_;
  std::string active_mix_;
  size_t generation_ = 0;

  /// Planned (horizon) mode state: the precomputed schedule and the index
  /// of the window whose schema is currently deployed.
  bool planned_mode_ = false;
  std::vector<PlannedWindow> planned_;
  size_t current_window_ = 0;

  std::unique_ptr<Generation> pending_;
  std::unique_ptr<MigrationPlan> mig_plan_;
  std::unique_ptr<MigrationExecutor> migration_;
  MigrationRecord pending_record_;

  std::vector<LoggedStatement> update_log_;
  std::vector<LoggedStatement> query_log_;
  EvolveReport report_;
};

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_EVOLVE_H_
