#include "evolve/migration_planner.h"

#include <algorithm>
#include <sstream>

#include "optimizer/horizon.h"

namespace nose::evolve {

MigrationPlan PlanMigration(const Schema& old_schema, const Schema& new_schema,
                            const CostModel& cost,
                            const MigrationTraffic& traffic) {
  MigrationPlan plan;

  for (size_t i = 0; i < new_schema.size(); ++i) {
    const ColumnFamily& cf = new_schema.column_families()[i];
    if (old_schema.FindByKey(cf.key()) != nullptr) {
      plan.keep_names.push_back(new_schema.names()[i]);
    } else {
      plan.build_indices.push_back(i);
    }
  }
  for (size_t i = 0; i < old_schema.size(); ++i) {
    const ColumnFamily& cf = old_schema.column_families()[i];
    if (new_schema.FindByKey(cf.key()) == nullptr) {
      plan.drop_names.push_back(old_schema.names()[i]);
    }
  }

  // Build smallest-first; ties break on store name for determinism.
  std::sort(plan.build_indices.begin(), plan.build_indices.end(),
            [&](size_t a, size_t b) {
              const double sa = new_schema.column_families()[a].SizeBytes();
              const double sb = new_schema.column_families()[b].SizeBytes();
              if (sa != sb) return sa < sb;
              return new_schema.names()[a] < new_schema.names()[b];
            });
  std::sort(plan.drop_names.begin(), plan.drop_names.end());

  for (size_t i : plan.build_indices) {
    const ColumnFamily& cf = new_schema.column_families()[i];
    MigrationStep step;
    step.kind = MigrationStepKind::kBuild;
    step.cf_name = new_schema.names()[i];
    step.schema_index = i;
    step.est_rows = cf.EntryCount();
    step.est_bytes = cf.SizeBytes();
    // Shared pricing with the horizon optimizer's transition variables: a
    // planned schedule's migration charges match what executing this plan
    // will actually cost.
    step.est_cost_ms = BuildCostMs(cf, cost);
    plan.est_build_rows += step.est_rows;
    plan.est_build_bytes += step.est_bytes;
    plan.est_build_cost_ms += step.est_cost_ms;
    plan.est_dual_write_cost_ms += DualWriteCostMs(cf, cost, traffic);
    plan.steps.push_back(std::move(step));
  }
  if (!plan.empty()) {
    plan.steps.push_back({MigrationStepKind::kCatchUp, "", 0, 0, 0, 0});
    plan.steps.push_back({MigrationStepKind::kDualWrite, "", 0, 0, 0,
                          plan.est_dual_write_cost_ms});
    plan.steps.push_back({MigrationStepKind::kVerify, "", 0, 0, 0, 0});
    plan.steps.push_back({MigrationStepKind::kCutover, "", 0, 0, 0, 0});
    for (const std::string& name : plan.drop_names) {
      const double drop_ms = DropCostMs(cost);
      plan.est_drop_cost_ms += drop_ms;
      plan.steps.push_back({MigrationStepKind::kDrop, name, 0, 0, 0, drop_ms});
    }
  }
  return plan;
}

std::string MigrationPlan::ToString() const {
  std::ostringstream out;
  out << "migration: " << build_indices.size() << " build, "
      << keep_names.size() << " keep, " << drop_names.size() << " drop; est "
      << est_build_rows << " rows / " << est_build_bytes << " bytes / "
      << est_build_cost_ms << " build + " << est_drop_cost_ms << " drop + "
      << est_dual_write_cost_ms << " dual-write ms\n";
  for (const MigrationStep& step : steps) {
    switch (step.kind) {
      case MigrationStepKind::kBuild:
        out << "  build " << step.cf_name << " (" << step.est_rows
            << " rows, " << step.est_bytes << " bytes, " << step.est_cost_ms
            << " ms)\n";
        break;
      case MigrationStepKind::kCatchUp:
        out << "  catch-up\n";
        break;
      case MigrationStepKind::kDualWrite:
        out << "  dual-write\n";
        break;
      case MigrationStepKind::kVerify:
        out << "  verify\n";
        break;
      case MigrationStepKind::kCutover:
        out << "  cutover\n";
        break;
      case MigrationStepKind::kDrop:
        out << "  drop " << step.cf_name << "\n";
        break;
    }
  }
  return out.str();
}

}  // namespace nose::evolve
