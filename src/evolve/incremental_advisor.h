#ifndef NOSE_EVOLVE_INCREMENTAL_ADVISOR_H_
#define NOSE_EVOLVE_INCREMENTAL_ADVISOR_H_

#include <set>
#include <string>

#include "advisor/advisor.h"

namespace nose::evolve {

/// One re-advise outcome: a full Recommendation plus how it was obtained.
struct ReadviseResult {
  Recommendation rec;
  /// True when the interned candidate pool and plan-space cache of the
  /// previous advise were reused (same statement set, or a subset whose
  /// spaces were projected from the superset's).
  bool incremental = false;
  /// True when the statement set shrank and the new cache was seeded by
  /// projecting the previous pool's plan spaces.
  bool seeded_from_superset = false;
  double seconds = 0.0;
};

/// Stateful advisor for the online loop: successive Advise calls against
/// evolving weights reuse the interned candidate pool, the cached
/// per-statement plan spaces, and the previous solve's root-LP basis
/// (hot start via PlanSpaceCache; the previous incumbent is deliberately
/// not seeded — see SchemaOptimizer — so gap-based pruning cannot steer
/// the search to a different within-gap optimum). Every result is
/// byte-identical to a cold Advisor::Recommend on the same workload/mix.
class IncrementalAdvisor {
 public:
  explicit IncrementalAdvisor(AdvisorOptions options = AdvisorOptions());

  StatusOr<ReadviseResult> Advise(const Workload& workload,
                                  const std::string& mix);

  /// Drops all reusable state; the next Advise is cold.
  void Reset();

  const CandidatePool& pool() const { return pool_; }

 private:
  AdvisorOptions options_;
  Advisor advisor_;
  CandidatePool pool_;
  PlanSpaceCache cache_;
  std::set<std::string> names_;
  bool has_state_ = false;
};

}  // namespace nose::evolve

#endif  // NOSE_EVOLVE_INCREMENTAL_ADVISOR_H_
