#include "evolve/incremental_advisor.h"

#include <algorithm>
#include <utility>

#include "enumerator/enumerator.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace nose::evolve {

IncrementalAdvisor::IncrementalAdvisor(AdvisorOptions options)
    : options_(options), advisor_(options) {}

void IncrementalAdvisor::Reset() {
  pool_ = CandidatePool();
  cache_ = PlanSpaceCache();
  names_.clear();
  has_state_ = false;
}

StatusOr<ReadviseResult> IncrementalAdvisor::Advise(const Workload& workload,
                                                    const std::string& mix) {
  Stopwatch watch;
  const auto entries = workload.EntriesIn(mix);
  if (entries.empty()) {
    return Status::InvalidArgument("mix " + mix + " has no weighted statements");
  }
  std::set<std::string> names;
  for (const auto& [entry, weight] : entries) names.insert(entry->name);

  bool incremental = false;
  bool seeded = false;
  if (has_state_ && names == names_) {
    // Same statement set: weights enter only as BIP costs, so the pool and
    // every cached plan space (plus the previous optimum) apply verbatim.
    incremental = true;
  } else {
    Enumerator enumerator(options_.enumerator);
    CandidatePool fresh = enumerator.EnumerateWorkload(workload, mix);
    PlanSpaceCache fresh_cache;
    if (has_state_ &&
        std::includes(names_.begin(), names_.end(), names.begin(),
                      names.end()) &&
        SeedCacheFromSuperset(cache_, pool_, fresh, entries, &fresh_cache)) {
      incremental = true;
      seeded = true;
    }
    pool_ = std::move(fresh);
    cache_ = std::move(fresh_cache);
    names_ = std::move(names);
    has_state_ = true;
  }

  auto rec = advisor_.RecommendWithPool(workload, mix, pool_, &cache_);
  if (!rec.ok()) return rec.status();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter(incremental ? "evolve.readvise_incremental"
                             : "evolve.readvise_cold")
      .Increment();
  ReadviseResult out;
  out.rec = std::move(rec).value();
  out.incremental = incremental;
  out.seeded_from_superset = seeded;
  out.seconds = watch.ElapsedSeconds();
  reg.GetGauge("evolve.readvise_ms").Set(out.seconds * 1e3);
  return out;
}

}  // namespace nose::evolve
