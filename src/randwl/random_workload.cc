#include "randwl/random_workload.h"

#include <algorithm>
#include <set>

namespace nose::randwl {

namespace {

std::string EntityName(size_t i) { return "E" + std::to_string(i); }

/// Watts-Strogatz small-world edges over `n` nodes: ring of degree `k`,
/// each edge rewired with probability `beta` (paper §VII-B cites
/// Watts-Strogatz for the random entity graphs).
std::vector<std::pair<size_t, size_t>> WattsStrogatzEdges(
    size_t n, size_t k, double beta, Rng& rng) {
  std::set<std::pair<size_t, size_t>> edges;
  auto canon = [](size_t a, size_t b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 1; j <= k; ++j) {
      size_t target = (i + j) % n;
      if (target == i) continue;
      if (rng.NextDouble() < beta) {
        // Rewire to a uniform random non-self target.
        for (int attempt = 0; attempt < 10; ++attempt) {
          const size_t t = rng.Uniform(n);
          if (t != i && edges.count(canon(i, t)) == 0) {
            target = t;
            break;
          }
        }
      }
      if (target != i) edges.insert(canon(i, target));
    }
  }
  return {edges.begin(), edges.end()};
}

FieldType RandomFieldType(Rng& rng) {
  switch (rng.Uniform(4)) {
    case 0:
      return FieldType::kInteger;
    case 1:
      return FieldType::kFloat;
    case 2:
      return FieldType::kString;
    default:
      return FieldType::kDate;
  }
}

}  // namespace

StatusOr<RandomWorkload> Generate(const GeneratorOptions& options) {
  Rng rng(options.seed);
  RandomWorkload out;
  out.graph = std::make_unique<EntityGraph>();

  // --- Entities with random attributes and sizes. ---
  const size_t n = std::max<size_t>(2, options.num_entities);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t count = 100ull << rng.Uniform(8);  // 100 .. 12800
    Entity entity(EntityName(i), count);
    const size_t attrs = 2 + rng.Uniform(options.max_extra_attributes + 1);
    for (size_t a = 0; a < attrs; ++a) {
      Field field;
      field.name = "A" + std::to_string(i) + "_" + std::to_string(a);
      field.type = RandomFieldType(rng);
      field.cardinality = 1 + rng.Uniform(count);
      NOSE_RETURN_IF_ERROR(entity.AddField(std::move(field)));
    }
    NOSE_RETURN_IF_ERROR(out.graph->AddEntity(std::move(entity)));
  }

  // --- Relationships: random direction + cardinality per WS edge. ---
  size_t rel_count = 0;
  for (auto [a, b] : WattsStrogatzEdges(n, options.ws_k, options.ws_beta, rng)) {
    if (rng.Chance(0.5)) std::swap(a, b);
    Relationship rel;
    rel.from_entity = EntityName(a);
    rel.to_entity = EntityName(b);
    rel.cardinality =
        rng.Chance(0.8) ? Cardinality::kOneToMany : Cardinality::kManyToMany;
    rel.forward_name = "r" + std::to_string(rel_count) + "_fwd";
    rel.reverse_name = "r" + std::to_string(rel_count) + "_rev";
    ++rel_count;
    NOSE_RETURN_IF_ERROR(out.graph->AddRelationship(std::move(rel)));
  }

  // --- Statements: random walks with random predicates. ---
  out.workload = std::make_unique<Workload>(out.graph.get());
  auto random_path = [&]() -> KeyPath {
    while (true) {
      const std::string start = EntityName(rng.Uniform(n));
      std::vector<std::string> steps;
      std::set<std::string> visited = {start};
      std::string current = start;
      const size_t want = 1 + rng.Uniform(options.max_path_length);
      for (size_t s = 0; s < want; ++s) {
        // Collect candidate steps leaving `current`.
        std::vector<std::pair<std::string, std::string>> choices;  // step, target
        for (const Relationship& rel : out.graph->relationships()) {
          if (rel.from_entity == current && visited.count(rel.to_entity) == 0) {
            choices.emplace_back(rel.forward_name, rel.to_entity);
          }
          if (rel.to_entity == current && visited.count(rel.from_entity) == 0) {
            choices.emplace_back(rel.reverse_name, rel.from_entity);
          }
        }
        if (choices.empty()) break;
        const auto& [step, target] = choices[rng.Uniform(choices.size())];
        steps.push_back(step);
        visited.insert(target);
        current = target;
      }
      if (steps.empty()) continue;  // retry: need a real path
      auto path = out.graph->ResolvePath(start, steps);
      if (path.ok()) return std::move(path).value();
    }
  };

  auto random_attr = [&](const std::string& entity) -> FieldRef {
    const Entity& e = out.graph->GetEntity(entity);
    const Field& f = e.fields()[rng.Uniform(e.fields().size())];
    return FieldRef{entity, f.name};
  };

  int param_count = 0;
  auto fresh_param = [&]() { return "p" + std::to_string(++param_count); };

  for (size_t s = 0; s < options.num_statements; ++s) {
    const std::string name = "stmt" + std::to_string(s);
    const bool is_update = rng.NextDouble() < options.update_fraction;
    KeyPath path = random_path();
    const size_t last = path.NumEntities() - 1;

    if (!is_update) {
      // Query: anchor equality on the deepest entity, up to two more
      // predicates along the path (paper: three predicates per statement).
      std::vector<Predicate> preds;
      preds.push_back(Predicate{random_attr(path.EntityAt(last)),
                                PredicateOp::kEq, std::nullopt, fresh_param()});
      for (int extra = 0; extra < 2; ++extra) {
        if (!rng.Chance(0.7)) continue;
        const size_t pos = rng.Uniform(path.NumEntities());
        const PredicateOp op = rng.Chance(0.5) ? PredicateOp::kEq
                               : rng.Chance(0.5) ? PredicateOp::kGt
                                                 : PredicateOp::kLt;
        preds.push_back(Predicate{random_attr(path.EntityAt(pos)), op,
                                  std::nullopt, fresh_param()});
      }
      std::vector<FieldRef> select;
      const size_t nsel = 1 + rng.Uniform(2);
      for (size_t k = 0; k < nsel; ++k) {
        const FieldRef ref = random_attr(path.EntityAt(0));
        if (std::find(select.begin(), select.end(), ref) == select.end()) {
          select.push_back(ref);
        }
      }
      Query query(path, std::move(select), std::move(preds), {});
      if (!query.Validate().ok()) {
        --s;  // regenerate (e.g. duplicate predicate field edge cases)
        continue;
      }
      NOSE_RETURN_IF_ERROR(
          out.workload->AddQuery(name, std::move(query), 1.0 + rng.Uniform(10)));
    } else {
      // Update: set random non-key attributes of the path's first entity,
      // selected by an ID equality at a random path position.
      const std::string& target = path.EntityAt(0);
      const Entity& te = out.graph->GetEntity(target);
      std::vector<SetClause> sets;
      for (const Field& f : te.fields()) {
        if (f.type == FieldType::kId) continue;
        if (sets.size() < 2 && rng.Chance(0.35)) {
          sets.push_back(SetClause{f.name, std::nullopt, fresh_param()});
        }
      }
      if (sets.empty() && te.fields().size() > 1) {
        sets.push_back(SetClause{te.fields()[1].name, std::nullopt,
                                 fresh_param()});
      }
      const size_t pos = rng.Uniform(path.NumEntities());
      const std::string& pred_entity = path.EntityAt(pos);
      std::vector<Predicate> preds = {
          Predicate{FieldRef{pred_entity,
                             out.graph->GetEntity(pred_entity).id_field().name},
                    PredicateOp::kEq, std::nullopt, fresh_param()}};
      auto update = Update::MakeUpdate(path, std::move(sets), std::move(preds));
      if (!update.ok()) {
        --s;
        continue;
      }
      NOSE_RETURN_IF_ERROR(out.workload->AddUpdate(
          name, std::move(update).value(), 1.0 + rng.Uniform(5)));
    }
  }
  return out;
}

}  // namespace nose::randwl
