#ifndef NOSE_RANDWL_RANDOM_WORKLOAD_H_
#define NOSE_RANDWL_RANDOM_WORKLOAD_H_

#include <memory>

#include "model/entity_graph.h"
#include "util/rng.h"
#include "util/statusor.h"
#include "workload/workload.h"

namespace nose::randwl {

/// Parameters of the random model/workload generator used to measure
/// advisor runtime at scale (paper §VII-B, Fig. 13).
struct GeneratorOptions {
  /// Number of entity sets (scaled by the experiment's factor). The
  /// defaults approximate the RUBiS workload's proportions (paper §VII-B:
  /// "a random workload having similar properties to the RUBiS workload").
  size_t num_entities = 6;
  /// Number of statements (scaled by the experiment's factor).
  size_t num_statements = 12;
  /// Fraction of statements that are updates.
  double update_fraction = 0.3;
  /// Watts-Strogatz ring degree (each node connects to k nearest).
  size_t ws_k = 2;
  /// Watts-Strogatz rewiring probability.
  double ws_beta = 0.1;
  /// Attributes per entity: 2 + Uniform(max_extra_attributes).
  size_t max_extra_attributes = 5;
  /// Maximum random-walk length for statement paths.
  size_t max_path_length = 2;
  uint64_t seed = 1;
};

struct RandomWorkload {
  std::unique_ptr<EntityGraph> graph;
  std::unique_ptr<Workload> workload;
};

/// Generates a random entity graph (Watts-Strogatz topology, random edge
/// directions and cardinalities, random attributes) plus a workload of
/// random-walk queries with up to three predicates and random updates —
/// the input distribution of the paper's advisor-runtime experiment.
StatusOr<RandomWorkload> Generate(const GeneratorOptions& options);

}  // namespace nose::randwl

#endif  // NOSE_RANDWL_RANDOM_WORKLOAD_H_
