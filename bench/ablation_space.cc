// Space-constraint sweep (paper §IX: "applications [can] explicitly
// control the tradeoff between normalization and query performance by
// varying a space constraint").
//
// Subject: the hotel workload, where the denormalized guest->POI
// materialized view is ~50x larger than its normalized replacement —
// shrinking the budget forces the advisor through the normalization
// spectrum. (The RUBiS workload is a poor subject here: its mandatory
// base data is ~99% of the unconstrained schema, so there is no slack to
// trade; this bench reports that floor too.)

//   ablation_space [--json FILE]
//
// --json appends one nose-bench-v1 record per budget point (instance
// "unconstrained", "budget90", ...) to FILE.

#include <cstdio>
#include <cstring>
#include <string>

#include "advisor/advisor.h"
#include "bench/bench_json.h"
#include "parser/model_parser.h"
#include "parser/workload_parser.h"
#include "rubis/model.h"
#include "rubis/workload.h"

namespace nose::bench {
namespace {

constexpr const char* kHotelModel = R"(
entity Hotel 100 {
  HotelCity string card 20
}
entity Room 10000 {
  RoomRate float card 100
}
entity Reservation 100000 { id ResID }
entity Guest 50000 {
  GuestName string
  GuestEmail string
}
relationship Hotel one_to_many Room as Rooms / Hotel
relationship Room one_to_many Reservation as Reservations / Room
relationship Guest one_to_many Reservation as Reservations / Guest
)";

constexpr const char* kHotelWorkload = R"(
statement guests_by_city 1 :
  SELECT Guest.GuestName, Guest.GuestEmail
  FROM Guest.Reservations.Room.Hotel
  WHERE Hotel.HotelCity = ?city AND Room.RoomRate > ?rate ;
statement reprice 20 :
  UPDATE Room SET RoomRate = ?rate WHERE Room.RoomID = ?room ;
)";

// Sweep fractions chosen to land between the workload's storage floor
// (the data itself must be stored at least once: ~52% here) and the fully
// denormalized unconstrained schema.

int Main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: ablation_space [--json FILE]\n");
      return 2;
    }
  }
  BenchJsonWriter json;
  if (!json_path.empty() && !json.Open(json_path, "ablation_space")) {
    return 1;
  }

  auto graph = ParseModel(kHotelModel);
  if (!graph.ok()) return 1;
  auto workload = ParseWorkload(**graph, kHotelWorkload);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  Advisor advisor;
  auto base = advisor.Recommend(**workload);
  if (!base.ok()) {
    std::printf("unconstrained advisor failed: %s\n",
                base.status().ToString().c_str());
    return 1;
  }
  const double full_size = base->schema.TotalSizeBytes();
  std::printf("Space-constraint sweep, hotel workload\n");
  std::printf("unconstrained schema: %.2f MB, estimated cost %.4f\n\n",
              full_size / 1e6, base->objective);
  std::printf("%8s %10s %10s %8s\n", "budget", "size(MB)", "est.cost",
              "schema");
  std::printf("%8s %10.2f %10.4f %8zu\n", "none", full_size / 1e6,
              base->objective, base->schema.size());
  json.Instance("unconstrained")
      .Metric("size_bytes", full_size)
      .Metric("objective", base->objective)
      .Metric("schema_size", static_cast<double>(base->schema.size()));

  double last_cost = base->objective;
  for (double frac : {0.9, 0.75, 0.65, 0.58, 0.52, 0.45}) {
    AdvisorOptions options;
    options.optimizer.space_limit_bytes = full_size * frac;
    Advisor constrained(options);
    auto rec = constrained.Recommend(**workload);
    const std::string instance =
        "budget" + std::to_string(static_cast<int>(frac * 100));
    if (!rec.ok()) {
      std::printf("%7.0f%% infeasible — below the workload's storage floor\n",
                  frac * 100);
      json.Instance(instance)
          .Metric("budget_fraction", frac)
          .Label("feasible", false);
      continue;
    }
    std::printf("%7.0f%% %10.2f %10.4f %8zu%s\n", frac * 100,
                rec->schema.TotalSizeBytes() / 1e6, rec->objective,
                rec->schema.size(),
                rec->objective >= last_cost - 1e-9 ? "" : "  (!! cost fell)");
    json.Instance(instance)
        .Metric("budget_fraction", frac)
        .Metric("size_bytes", rec->schema.TotalSizeBytes())
        .Metric("objective", rec->objective)
        .Metric("schema_size", static_cast<double>(rec->schema.size()))
        .Label("feasible", true);
    last_cost = rec->objective;
  }
  json.Close();

  // Report the RUBiS storage floor for context.
  auto rubis_graph = rubis::MakeGraph();
  auto rubis_wl = rubis::MakeWorkload(**rubis_graph);
  Advisor rubis_advisor;
  auto rubis_rec = rubis_advisor.Recommend(**rubis_wl);
  if (rubis_rec.ok()) {
    std::printf(
        "\nRUBiS contrast: unconstrained schema %.2f MB, of which nearly all "
        "is mandatory base data (per-query minimum-size plans sum to ~the "
        "same) — no denormalization slack to trade.\n",
        rubis_rec->schema.TotalSizeBytes() / 1e6);
  }
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main(int argc, char** argv) { return nose::bench::Main(argc, argv); }
