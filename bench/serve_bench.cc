// Online-serving benchmark: the bundled Bidding -> Browsing drift scenario
// replayed through the concurrent ServeHarness at 1 and 8 driver threads.
//
// Doubles as a determinism gate: the two runs execute the same fixed
// logical streams, so their final post-cutover store content digests must
// be identical — the benchmark aborts on any divergence, a verification
// mismatch, or a missing migration.
//
//   serve_bench [--json FILE] [scenario-file]
//
// --json appends nose-bench-v1 records (one per thread count, plus a
// "determinism" record with the digest comparison) to FILE.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_json.h"
#include "evolve/scenario.h"
#include "serve/serve.h"
#include "util/stopwatch.h"

namespace nose {
namespace {

struct Run {
  std::unique_ptr<serve::ServeHarness> harness;
  double run_ms = 0.0;
};

Run RunAt(const evolve::DriftScenario& scenario, size_t threads) {
  serve::ServeOptions options;
  options.threads = threads;
  options.streams = 8;
  options.store_stripes = 16;
  options.migration_threads = 2;
  auto harness = serve::ServeHarness::Create(scenario, options);
  if (!harness.ok()) {
    std::fprintf(stderr, "FATAL: create (threads=%zu): %s\n", threads,
                 harness.status().message().c_str());
    std::exit(1);
  }
  Stopwatch watch;
  Status run = (*harness)->Run();
  if (!run.ok()) {
    std::fprintf(stderr, "FATAL: run (threads=%zu): %s\n", threads,
                 run.message().c_str());
    std::exit(1);
  }
  return {std::move(*harness), watch.ElapsedMillis()};
}

void Emit(bench::BenchJsonWriter& json, const char* instance, const Run& run) {
  const serve::ServeReport& report = run.harness->report();
  std::printf("%s: %s", instance, report.ToString().c_str());
  json.Instance(instance)
      .Metric("run_ms", run.run_ms)
      .Metric("transactions", static_cast<double>(report.transactions))
      .Metric("statements", static_cast<double>(report.statements))
      .Metric("migrations", static_cast<double>(report.migrations.size()))
      .Metric("p95_after_ms", report.after.p95_ms)
      .Metric("realized_store_ms", report.store.simulated_ms);
}

int Main(int argc, char** argv) {
  std::string json_path;
  std::string scenario_arg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (argv[i][0] != '-' && scenario_arg.empty()) {
      scenario_arg = argv[i];
    } else {
      std::fprintf(stderr, "usage: serve_bench [--json FILE] [scenario-file]\n");
      return 2;
    }
  }
  bench::BenchJsonWriter json;
  if (!json_path.empty() && !json.Open(json_path, "serve_bench")) {
    return 1;
  }

  const std::string scenario_path =
      !scenario_arg.empty() ? scenario_arg : "workloads/rubis_drift.scenario";
  auto scenario = evolve::LoadScenarioFile(scenario_path);
  if (!scenario.ok()) {
    std::fprintf(stderr, "FATAL: scenario: %s\n",
                 scenario.status().message().c_str());
    return 1;
  }

  Run control = RunAt(*scenario, 1);
  Run concurrent = RunAt(*scenario, 8);
  Emit(json, "serve_t1", control);
  Emit(json, "serve_t8", concurrent);

  const serve::ServeReport& a = control.harness->report();
  const serve::ServeReport& b = concurrent.harness->report();
  const bool digest_match = a.store_digest == b.store_digest;
  const bool migrated = !a.migrations.empty() && !b.migrations.empty();
  std::printf("determinism: digests %llu vs %llu (%s), %zu vs %zu "
              "migrations\n",
              static_cast<unsigned long long>(a.store_digest),
              static_cast<unsigned long long>(b.store_digest),
              digest_match ? "MATCH" : "DIVERGED", a.migrations.size(),
              b.migrations.size());
  json.Instance("determinism")
      .Metric("speedup",
              concurrent.run_ms > 0.0 ? control.run_ms / concurrent.run_ms
                                      : 0.0)
      .Label("digest_match", digest_match)
      .Label("migrated", migrated);
  json.Close();
  if (!digest_match) {
    std::fprintf(stderr,
                 "FATAL: concurrent store content diverged from the "
                 "single-threaded control\n");
    return 1;
  }
  if (!migrated) {
    std::fprintf(stderr, "FATAL: scenario produced no live migration\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace nose

int main(int argc, char** argv) { return nose::Main(argc, argv); }
