// Ablation: the value of each candidate-enumeration feature (predicate
// relaxation, key/value splits, Combine).
//
// Two subjects:
//  - RUBiS bidding: simple per-page queries — full materialized views win
//    regardless, so the features barely move the optimum (an honest
//    negative result).
//  - Hotel with an update-heavy range query (the paper's Fig. 6 setting):
//    relaxation/splits enable the cheap-to-maintain normalized plans, so
//    disabling them measurably raises the optimal workload cost.

//   ablation_enumeration [--json FILE]
//
// --json appends one nose-bench-v1 record per subject/config pair
// (instance "hotel/no-relaxation" etc.) to FILE.

#include <cstdio>
#include <cstring>
#include <string>

#include "advisor/advisor.h"
#include "bench/bench_json.h"
#include "parser/model_parser.h"
#include "parser/workload_parser.h"
#include "rubis/model.h"
#include "rubis/workload.h"

namespace nose::bench {
namespace {

constexpr const char* kHotelModel = R"(
entity Hotel 100 {
  HotelCity string card 20
}
entity Room 10000 {
  RoomRate float card 100
}
entity Reservation 100000 { id ResID }
entity Guest 50000 {
  GuestName string
  GuestEmail string
}
relationship Hotel one_to_many Room as Rooms / Hotel
relationship Room one_to_many Reservation as Reservations / Room
relationship Guest one_to_many Reservation as Reservations / Guest
)";

// The Fig. 3 query plus a frequent RoomRate update: with relaxation the
// advisor can defer the rate predicate out of the keys (Fig. 6's CF2+CF5
// plan shape) and keep maintenance cheap; without it, the rate sits in a
// clustering key and every reprice rewrites records.
constexpr const char* kHotelWorkload = R"(
statement guests_by_city 1 :
  SELECT Guest.GuestName, Guest.GuestEmail
  FROM Guest.Reservations.Room.Hotel
  WHERE Hotel.HotelCity = ?city AND Room.RoomRate > ?rate ;
statement reprice 20 :
  UPDATE Room SET RoomRate = ?rate WHERE Room.RoomID = ?room ;
)";

void RunConfigs(const Workload& workload, const char* subject,
                const char* subject_key, BenchJsonWriter* json) {
  struct Config {
    const char* label;
    bool relax, split, combine;
  };
  const Config configs[] = {
      {"full", true, true, true},
      {"no-relaxation", false, true, true},
      {"no-splits", true, false, true},
      {"no-combine", true, true, false},
      {"minimal", false, false, false},
  };
  std::printf("%s\n", subject);
  std::printf("%-15s %7s %10s %8s %9s\n", "config", "cands", "est.cost",
              "schema", "time(s)");
  double full_cost = 0.0;
  for (const Config& cfg : configs) {
    AdvisorOptions options;
    options.enumerator.enable_relaxation = cfg.relax;
    options.enumerator.enable_splits = cfg.split;
    options.enumerator.enable_combination = cfg.combine;
    Advisor advisor(options);
    auto rec = advisor.Recommend(workload);
    if (!rec.ok()) {
      std::printf("%-15s FAILED: %s\n", cfg.label,
                  rec.status().ToString().c_str());
      continue;
    }
    if (full_cost == 0.0) full_cost = rec->objective;
    std::printf("%-15s %7zu %10.4f %8zu %9.2f   (%.3fx of full)\n", cfg.label,
                rec->num_candidates, rec->objective, rec->schema.size(),
                rec->timing.total_seconds, rec->objective / full_cost);
    json->Instance(std::string(subject_key) + "/" + cfg.label)
        .Metric("candidates", static_cast<double>(rec->num_candidates))
        .Metric("objective", rec->objective)
        .Metric("schema_size", static_cast<double>(rec->schema.size()))
        .Metric("cost_vs_full", rec->objective / full_cost)
        .Metric("total_seconds", rec->timing.total_seconds);
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: ablation_enumeration [--json FILE]\n");
      return 2;
    }
  }
  BenchJsonWriter json;
  if (!json_path.empty() && !json.Open(json_path, "ablation_enumeration")) {
    return 1;
  }

  std::printf("Enumeration-feature ablation\n\n");
  {
    auto graph = ParseModel(kHotelModel);
    if (!graph.ok()) return 1;
    auto workload = ParseWorkload(**graph, kHotelWorkload);
    if (!workload.ok()) return 1;
    RunConfigs(**workload, "hotel: range query + frequent repricing", "hotel",
               &json);
  }
  {
    auto graph = rubis::MakeGraph();
    if (!graph.ok()) return 1;
    auto workload = rubis::MakeWorkload(**graph);
    if (!workload.ok()) return 1;
    RunConfigs(**workload, "RUBiS bidding workload", "rubis", &json);
  }
  json.Close();
  std::printf(
      "observed: the optima are near-identical across configs — our\n"
      "decomposition-split candidates (always generated) subsume the plans\n"
      "relaxation/splits/Combine would otherwise enable on these workloads,\n"
      "so the features mainly trade pool size against advisor runtime. This\n"
      "matches the paper\'s remark that enumeration breadth is a runtime/\n"
      "quality tradeoff (§IV-A3).\n");
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main(int argc, char** argv) { return nose::bench::Main(argc, argv); }
