// Reproduces Fig. 11: mean response time per RUBiS bidding-workload
// transaction type, executed against three schemas — the NoSE-recommended
// schema, the normalized baseline, and the hand-designed expert schema.
//
// Latencies are simulated milliseconds from the record-store latency model
// (see DESIGN.md): absolute values differ from the paper's Cassandra
// testbed, the *shape* (NoSE <= Expert << Normalized on reads; NoSE pays a
// bit more on rare writes) is the reproduced result.
//
//   fig11_bidding [--json FILE]
//
// --json appends nose-bench-v1 records (one per transaction type plus a
// weighted_avg record) to FILE.
//
// Environment: NOSE_RUBIS_SCALE (default 0.25) scales entity counts;
// NOSE_FIG11_EXECUTIONS (default 200) sets executions per transaction;
// NOSE_METRICS (a path) dumps the executor/store counter snapshot —
// requests, rows scanned, bytes moved, write amplification — as JSON.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "bench/rubis_driver.h"
#include "obs/metrics.h"

namespace nose::bench {
namespace {

int Main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: fig11_bidding [--json FILE]\n");
      return 2;
    }
  }
  BenchJsonWriter json;
  if (!json_path.empty() && !json.Open(json_path, "fig11_bidding")) {
    return 1;
  }

  const char* env = std::getenv("NOSE_FIG11_EXECUTIONS");
  const int executions = env != nullptr ? std::atoi(env) : 200;

  RubisBench bench;
  std::printf("Fig. 11 — RUBiS bidding workload, %d executions/transaction\n",
              executions);
  std::printf("store: %zu users, %zu items, %zu bids\n",
              bench.data().RowCount("User"), bench.data().RowCount("Item"),
              bench.data().RowCount("Bid"));

  auto nose = bench.MakeNose(rubis::kBiddingMix);
  auto normalized = bench.MakeNormalized(rubis::kBiddingMix);
  auto expert = bench.MakeExpert(rubis::kBiddingMix);
  std::printf("schemas: NoSE=%zu CFs, Normalized=%zu CFs, Expert=%zu CFs\n\n",
              nose->schema.size(), normalized->schema.size(),
              expert->schema.size());

  std::printf("%-22s %12s %12s %12s   (avg simulated ms)\n", "Transaction",
              "NoSE", "Normalized", "Expert");
  double wsum[3] = {0, 0, 0};
  double wtotal = 0;
  for (const rubis::Transaction& tx : rubis::Transactions()) {
    double totals[3] = {0, 0, 0};
    SchemaUnderTest* suts[3] = {nose.get(), normalized.get(), expert.get()};
    for (int s = 0; s < 3; ++s) {
      // Identical parameter streams per schema for a fair comparison.
      rubis::ParamGenerator gen(&bench.data(), 0xF16'11 + 97 * s);
      for (int i = 0; i < executions; ++i) {
        totals[s] += bench.RunTransaction(suts[s], tx, &gen);
      }
    }
    std::printf("%-22s %12.3f %12.3f %12.3f\n", tx.name.c_str(),
                totals[0] / executions, totals[1] / executions,
                totals[2] / executions);
    json.Instance(tx.name)
        .Metric("executions", static_cast<double>(executions))
        .Metric("nose_ms", totals[0] / executions)
        .Metric("normalized_ms", totals[1] / executions)
        .Metric("expert_ms", totals[2] / executions)
        .Label("is_write", tx.is_write);
    for (int s = 0; s < 3; ++s) wsum[s] += tx.bidding_weight * totals[s] / executions;
    wtotal += tx.bidding_weight;
  }
  std::printf("%-22s %12.3f %12.3f %12.3f\n", "WEIGHTED-AVG",
              wsum[0] / wtotal, wsum[1] / wtotal, wsum[2] / wtotal);
  std::printf(
      "\npaper shape check: NoSE weighted-avg beats Expert by ~%.2fx "
      "(paper: 1.8x) and Normalized by ~%.2fx\n",
      wsum[2] / wsum[0], wsum[1] / wsum[0]);
  json.Instance("weighted_avg")
      .Metric("nose_ms", wsum[0] / wtotal)
      .Metric("normalized_ms", wsum[1] / wtotal)
      .Metric("expert_ms", wsum[2] / wtotal)
      .Metric("expert_over_nose", wsum[2] / wsum[0])
      .Metric("normalized_over_nose", wsum[1] / wsum[0]);
  json.Close();
  if (const char* metrics_path = std::getenv("NOSE_METRICS")) {
    std::string error;
    if (!obs::MetricsRegistry::Global().WriteJson(metrics_path, &error)) {
      std::fprintf(stderr, "error: cannot write metrics: %s\n", error.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main(int argc, char** argv) { return nose::bench::Main(argc, argv); }
