// nose-bench-v1: the one JSON schema every bench/* binary emits under
// --json FILE. One line is appended per measured instance:
//
//   {"schema":"nose-bench-v1","bench":"<binary>","instance":"<case>",
//    "metrics":{"<name>":<number>,...},"labels":{"<name>":"<string>"|bool,...}}
//
// ci/bench_compare keys records by (bench, instance): metrics named
// *_ms/*_seconds/*_ns are compared against the committed baseline under a
// multiplicative tolerance band (timings jitter), every other metric under
// a tight relative tolerance (counts and objectives must not move), and
// labels must match exactly.

#ifndef NOSE_BENCH_BENCH_JSON_H_
#define NOSE_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <string>
#include <utility>

namespace nose::bench {

/// Appends nose-bench-v1 records to a JSONL file. Not thread-safe; bench
/// binaries emit from their main thread.
class BenchJsonWriter {
 public:
  BenchJsonWriter() = default;
  ~BenchJsonWriter() { Close(); }
  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  /// Opens `path` for append. Returns false (with a message on stderr) on
  /// failure; records are then silently dropped so callers need no guards.
  bool Open(const std::string& path, std::string bench) {
    Close();
    bench_ = std::move(bench);
    file_ = std::fopen(path.c_str(), "a");
    if (file_ == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      return false;
    }
    return true;
  }

  bool is_open() const { return file_ != nullptr; }

  void Close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  /// One record under construction; the line is written when the record is
  /// destroyed (or Finish()ed). Metric/Label order is preserved.
  class Record {
   public:
    Record(BenchJsonWriter* writer, const std::string& instance)
        : writer_(writer) {
      if (writer_ == nullptr || !writer_->is_open()) {
        writer_ = nullptr;
        return;
      }
      line_ = "{\"schema\":\"nose-bench-v1\",\"bench\":\"" + writer_->bench_ +
              "\",\"instance\":\"" + instance + "\",\"metrics\":{";
    }
    ~Record() { Finish(); }
    Record(Record&& other) noexcept
        : writer_(other.writer_), line_(std::move(other.line_)),
          metrics_(other.metrics_), labels_(std::move(other.labels_)) {
      other.writer_ = nullptr;
    }
    Record(const Record&) = delete;
    Record& operator=(const Record&) = delete;
    Record& operator=(Record&&) = delete;

    Record& Metric(const char* name, double value) {
      if (writer_ == nullptr) return *this;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s\"%s\":%.17g",
                    metrics_ ? "," : "", name, value);
      line_ += buf;
      metrics_ = true;
      return *this;
    }

    Record& Label(const char* name, const std::string& value) {
      return AppendLabel(name, "\"" + value + "\"");
    }
    Record& Label(const char* name, const char* value) {
      return Label(name, std::string(value));
    }
    Record& Label(const char* name, bool value) {
      return AppendLabel(name, value ? "true" : "false");
    }

    void Finish() {
      if (writer_ == nullptr) return;
      line_ += "},\"labels\":{" + labels_ + "}}\n";
      std::fputs(line_.c_str(), writer_->file_);
      writer_ = nullptr;
    }

   private:
    Record& AppendLabel(const char* name, const std::string& rendered) {
      if (writer_ == nullptr) return *this;
      if (!labels_.empty()) labels_.push_back(',');
      labels_ += "\"";
      labels_ += name;
      labels_ += "\":";
      labels_ += rendered;
      return *this;
    }

    BenchJsonWriter* writer_ = nullptr;
    std::string line_;
    bool metrics_ = false;
    std::string labels_;
  };

  Record Instance(const std::string& instance) {
    return Record(this, instance);
  }

 private:
  friend class Record;
  std::string bench_;
  std::FILE* file_ = nullptr;
};

}  // namespace nose::bench

#endif  // NOSE_BENCH_BENCH_JSON_H_
