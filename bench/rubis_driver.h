#ifndef NOSE_BENCH_RUBIS_DRIVER_H_
#define NOSE_BENCH_RUBIS_DRIVER_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "executor/loader.h"
#include "executor/plan_executor.h"
#include "rubis/datagen.h"
#include "rubis/expert_schema.h"
#include "rubis/model.h"
#include "rubis/workload.h"
#include "schemas/normalized.h"
#include "util/stopwatch.h"

namespace nose::bench {

/// One schema under test plus everything needed to execute the workload
/// against it: a loaded store and per-statement plans.
struct SchemaUnderTest {
  std::string label;
  Schema schema;
  std::unique_ptr<Recommendation> rec;  // keeps NoSE plans' pool alive
  std::map<std::string, QueryPlan> query_plans;
  std::map<std::string, UpdatePlan> update_plans;
  std::unique_ptr<RecordStore> store;
  std::unique_ptr<PlanExecutor> executor;
};

/// Shared environment of the Fig. 11 / Fig. 12 experiments.
class RubisBench {
 public:
  /// `scale_factor` multiplies the default entity counts. Reads
  /// NOSE_RUBIS_SCALE from the environment when `scale_factor` <= 0.
  explicit RubisBench(double scale_factor = 0.0) {
    if (scale_factor <= 0.0) {
      const char* env = std::getenv("NOSE_RUBIS_SCALE");
      scale_factor = env != nullptr ? std::atof(env) : 0.25;
      if (scale_factor <= 0.0) scale_factor = 0.25;
    }
    rubis::ModelScale scale;
    scale.regions = std::max<size_t>(2, static_cast<size_t>(10 * scale_factor));
    scale.categories =
        std::max<size_t>(2, static_cast<size_t>(20 * scale_factor));
    scale.users = std::max<size_t>(20, static_cast<size_t>(2000 * scale_factor));
    scale.items = std::max<size_t>(40, static_cast<size_t>(4000 * scale_factor));
    scale.old_items =
        std::max<size_t>(20, static_cast<size_t>(2000 * scale_factor));
    scale.bids =
        std::max<size_t>(200, static_cast<size_t>(20000 * scale_factor));
    scale.buynows =
        std::max<size_t>(20, static_cast<size_t>(1000 * scale_factor));
    scale.comments =
        std::max<size_t>(40, static_cast<size_t>(4000 * scale_factor));

    auto graph = rubis::MakeGraph(scale);
    if (!graph.ok()) Die("model", graph.status());
    graph_ = std::move(graph).value();
    data_ = std::make_unique<Dataset>(
        rubis::GenerateData(graph_.get(), scale, /*seed=*/20260708));
    auto workload = rubis::MakeWorkload(*graph_);
    if (!workload.ok()) Die("workload", workload.status());
    workload_ = std::move(workload).value();
  }

  const EntityGraph& graph() const { return *graph_; }
  const Workload& workload() const { return *workload_; }
  const Dataset& data() const { return *data_; }

  /// Advises all `mixes` in one shared-pool pass (Advisor::AdviseAllMixes):
  /// mixes weighting the same statement set reuse one candidate pool and
  /// one set of plan spaces instead of re-enumerating per mix. The
  /// recommendations are stashed for MakeNose to consume. Returns the wall
  /// seconds the pass took (the Fig. 12 shared-pool headline number).
  double PrepareNoseRecommendations(const std::vector<std::string>& mixes) {
    Stopwatch watch;
    Advisor advisor;
    auto recs = advisor.AdviseAllMixes(*workload_, mixes);
    if (!recs.ok()) Die("advisor/all-mixes", recs.status());
    for (auto& [mix, rec] : *recs) {
      nose_recs_[mix] = std::make_unique<Recommendation>(std::move(rec));
    }
    return watch.ElapsedSeconds();
  }

  /// The recommendation staged for `mix`, or nullptr if none is staged
  /// (never staged, or already consumed by MakeNose).
  const Recommendation* StagedNoseRecommendation(const std::string& mix) const {
    auto it = nose_recs_.find(mix);
    return it == nose_recs_.end() ? nullptr : it->second.get();
  }

  /// NoSE-recommended schema for `mix`, loaded and ready to execute. Uses
  /// the recommendation stashed by PrepareNoseRecommendations when one
  /// exists; otherwise advises this mix alone.
  std::unique_ptr<SchemaUnderTest> MakeNose(const std::string& mix) {
    auto out = std::make_unique<SchemaUnderTest>();
    out->label = "NoSE";
    if (auto it = nose_recs_.find(mix); it != nose_recs_.end()) {
      out->rec = std::move(it->second);
      nose_recs_.erase(it);
    } else {
      Advisor advisor;
      auto rec = advisor.Recommend(*workload_, mix);
      if (!rec.ok()) Die("advisor", rec.status());
      out->rec = std::make_unique<Recommendation>(std::move(rec).value());
    }
    out->schema = out->rec->schema;
    for (const auto& [name, plan] : out->rec->query_plans) {
      out->query_plans.emplace(name, plan);
    }
    for (const auto& [name, plan] : out->rec->update_plans) {
      out->update_plans.emplace(name, plan);
    }
    FinishSetup(out.get(), mix);
    return out;
  }

  /// A fixed schema (normalized/expert baselines): plans derived with the
  /// planner restricted to that schema.
  std::unique_ptr<SchemaUnderTest> MakeFixed(const std::string& label,
                                             Schema schema,
                                             const std::string& mix) {
    auto out = std::make_unique<SchemaUnderTest>();
    out->label = label;
    out->schema = std::move(schema);
    CostModel cost_model;
    CardinalityEstimator estimator(graph_.get(), &cost_model.params());
    QueryPlanner planner(&cost_model, &estimator);
    for (const auto& [entry, weight] : workload_->EntriesIn(mix)) {
      if (entry->IsQuery()) {
        auto plan = planner.PlanForSchema(entry->query(),
                                          out->schema.column_families());
        if (!plan.ok()) Die(label + "/" + entry->name, plan.status());
        out->query_plans.emplace(entry->name, std::move(plan).value());
      } else {
        auto plan = PlanUpdateForSchema(entry->update(), out->schema, planner,
                                        estimator, cost_model);
        if (!plan.ok()) Die(label + "/" + entry->name, plan.status());
        out->update_plans.emplace(entry->name, std::move(plan).value());
      }
    }
    FinishSetup(out.get(), mix);
    return out;
  }

  std::unique_ptr<SchemaUnderTest> MakeNormalized(const std::string& mix) {
    auto schema = NormalizedSchema(*graph_, *workload_, mix);
    if (!schema.ok()) Die("normalized", schema.status());
    return MakeFixed("Normalized", std::move(schema).value(), mix);
  }

  std::unique_ptr<SchemaUnderTest> MakeExpert(const std::string& mix) {
    auto schema = rubis::ExpertSchema(*graph_);
    if (!schema.ok()) Die("expert", schema.status());
    return MakeFixed("Expert", std::move(schema).value(), mix);
  }

  /// Executes `transaction` once; returns simulated milliseconds.
  double RunTransaction(SchemaUnderTest* sut, const rubis::Transaction& tx,
                        rubis::ParamGenerator* gen) {
    PlanExecutor::Params params;
    for (const std::string& stmt : tx.statements) {
      gen->AddStatementParams(*workload_->FindEntry(stmt), &params);
    }
    const double before = sut->store->stats().simulated_ms;
    for (const std::string& stmt : tx.statements) {
      const WorkloadEntry* entry = workload_->FindEntry(stmt);
      if (entry->IsQuery()) {
        auto it = sut->query_plans.find(stmt);
        auto result = sut->executor->ExecuteQuery(it->second, params);
        if (!result.ok()) Die(sut->label + "/" + stmt, result.status());
      } else {
        auto it = sut->update_plans.find(stmt);
        Status s = sut->executor->ExecuteUpdate(it->second, params);
        if (!s.ok()) Die(sut->label + "/" + stmt, s);
      }
    }
    return sut->store->stats().simulated_ms - before;
  }

  [[noreturn]] static void Die(const std::string& what, const Status& status) {
    std::fprintf(stderr, "FATAL [%s]: %s\n", what.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }

 private:
  void FinishSetup(SchemaUnderTest* out, const std::string& mix) {
    (void)mix;
    out->store = std::make_unique<RecordStore>();
    Status s = LoadSchema(*data_, out->schema, out->store.get());
    if (!s.ok()) Die(out->label + "/load", s);
    out->executor =
        std::make_unique<PlanExecutor>(out->store.get(), &out->schema);
  }

  std::unique_ptr<EntityGraph> graph_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<Workload> workload_;
  /// Recommendations staged by PrepareNoseRecommendations, keyed by mix.
  std::map<std::string, std::unique_ptr<Recommendation>> nose_recs_;
};

}  // namespace nose::bench

#endif  // NOSE_BENCH_RUBIS_DRIVER_H_
