// Microbenchmarks of the LP/BIP solver substrate.
//
// Default mode (google-benchmark): simplex solve time vs problem size, and
// branch-and-bound on knapsack-like binary programs. These bound the
// optimizer's per-node cost.
//
//   solver_micro [google-benchmark flags]
//
// Comparison mode: replays synthetic cover instances and the real
// RUBiS-derived BIPs (captured from the schema optimizer via
// OptimizerOptions::capture_bip) against all three simplex engines
// (factorized, sparse tableau, dense tableau), appending one JSON object
// per instance to FILE (bench_results/ convention): rows, nnz, per-engine
// solve time and objective, end-of-solve fill, and speedups. Exits
// non-zero if any optimum diverges across the engine matrix, if presolve
// changes a BIP answer, or if a thread-pooled branch-and-bound run is not
// byte-identical to the serial one — CI runs this as a correctness gate.
//
//   solver_micro --json FILE

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "advisor/advisor.h"
#include "bench/bench_json.h"
#include "rubis/model.h"
#include "rubis/workload.h"
#include "solver/bip.h"
#include "solver/lp.h"
#include "solver/solve_log.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace nose {
namespace {

/// Random feasible covering-style LP: minimize positive costs subject to
/// >= rows, which is always feasible (upper bounds at 1, rhs <= row size).
LpProblem MakeCoverLp(int vars, int rows, uint64_t seed) {
  Rng rng(seed);
  LpProblem lp;
  for (int v = 0; v < vars; ++v) {
    lp.AddVariable(0.0, 1.0, 1.0 + static_cast<double>(rng.Uniform(100)));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> coeffs;
    const int nnz = 3 + static_cast<int>(rng.Uniform(8));
    for (int k = 0; k < nnz; ++k) {
      coeffs.emplace_back(static_cast<int>(rng.Uniform(vars)), 1.0);
    }
    lp.AddRow(RowType::kGe, 1.0 + static_cast<double>(rng.Uniform(2)),
              std::move(coeffs));
  }
  return lp;
}

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LpProblem lp = MakeCoverLp(n, n / 2, 42);
  for (auto _ : state) {
    LpResult r = lp.Solve();
    benchmark::DoNotOptimize(r.objective);
  }
  state.SetLabel("vars=" + std::to_string(n) +
                 " rows=" + std::to_string(n / 2));
}
BENCHMARK(BM_SimplexSolve)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

void BM_SimplexSolveDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LpProblem lp = MakeCoverLp(n, n / 2, 42);
  for (auto _ : state) {
    LpResult r = lp.Solve({}, 0, 0.0, LpEngine::kDense);
    benchmark::DoNotOptimize(r.objective);
  }
  state.SetLabel("vars=" + std::to_string(n) +
                 " rows=" + std::to_string(n / 2));
}
BENCHMARK(BM_SimplexSolveDense)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_BipSolveCover(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LpProblem lp = MakeCoverLp(n, n / 2, 7);
  std::vector<int> binaries(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) binaries[static_cast<size_t>(v)] = v;
  for (auto _ : state) {
    BipResult r = SolveBip(lp, binaries);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BipSolveCover)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

void BM_BipKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  LpProblem lp;
  std::vector<std::pair<int, double>> weights;
  for (int v = 0; v < n; ++v) {
    lp.AddVariable(0.0, 1.0, -(1.0 + static_cast<double>(rng.Uniform(50))));
    weights.emplace_back(v, 1.0 + static_cast<double>(rng.Uniform(20)));
  }
  lp.AddRow(RowType::kLe, 5.0 * n, std::move(weights));
  std::vector<int> binaries(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) binaries[static_cast<size_t>(v)] = v;
  for (auto _ : state) {
    BipResult r = SolveBip(lp, binaries);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BipKnapsack)->Arg(20)->Arg(40)->Arg(80);

// ===========================================================================
// Sparse-vs-dense comparison mode (--json).
// ===========================================================================

struct Instance {
  std::string name;
  LpProblem lp;
  std::vector<int> binaries;  // empty => compare LP relaxation only
};

/// Best-of-2 wall time for one LP solve on `engine`.
double TimeLpMs(const LpProblem& lp, LpEngine engine, LpResult* out) {
  double best = 0.0;
  for (int rep = 0; rep < 2; ++rep) {
    Stopwatch watch;
    LpResult r = lp.Solve({}, 0, 0.0, engine);
    const double ms = watch.ElapsedSeconds() * 1000.0;
    if (rep == 0 || ms < best) {
      best = ms;
      *out = std::move(r);
    }
  }
  return best;
}

double TimeBipMs(const LpProblem& lp, const std::vector<int>& binaries,
                 LpEngine engine, double time_limit_seconds, BipResult* out,
                 util::ThreadPool* threads = nullptr) {
  BipOptions options;
  options.lp_engine = engine;
  options.time_limit_seconds = time_limit_seconds;
  options.threads = threads;
  Stopwatch watch;
  *out = SolveBip(lp, binaries, options);
  return watch.ElapsedSeconds() * 1000.0;
}

/// End-of-solve stored-entry count (tableau nonzeros, or LU+eta factor
/// entries for the factorized engine) as SolveLog reports it — the fill
/// measure behind the tentpole's cover_lp800 acceptance gate.
uint64_t FillEndOf(const LpProblem& lp, LpEngine engine) {
  SolveLog& log = SolveLog::Global();
  log.Enable();
  lp.Solve({}, 0, 0.0, engine);
  const std::vector<LpSolveStats> records = log.LpRecords();
  log.Disable();
  return records.empty() ? 0 : records.back().fill_end;
}

/// RUBiS workload with every statement cloned `k` times under distinct
/// names. The advisor treats clones as separate statements, so plan
/// spaces and the BIP grow ~k-fold while the candidate pool keeps the
/// RUBiS shape (clones share the same interned column families) — this is
/// how the comparison table gets a RUBiS-derived instance big enough to
/// expose the engines' asymptotic gap.
std::unique_ptr<Workload> ScaleWorkload(const Workload& base, int k) {
  auto scaled = std::make_unique<Workload>(base.graph());
  for (int c = 0; c < k; ++c) {
    for (const WorkloadEntry& entry : base.entries()) {
      const std::string name = entry.name + "__c" + std::to_string(c);
      const double weight = entry.WeightIn(Workload::kDefaultMix);
      if (weight <= 0.0) continue;
      const Status status =
          entry.IsQuery() ? scaled->AddQuery(name, entry.query(), weight)
                          : scaled->AddUpdate(name, entry.update(), weight);
      if (!status.ok()) {
        std::fprintf(stderr, "FATAL [scale workload]: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
  }
  return scaled;
}

/// Captures the real RUBiS BIP for `mix` by running the advisor with the
/// BIP strategy forced and a capture hook installed.
Instance CaptureRubisBip(const Workload& workload, const std::string& mix) {
  BipCapture capture;
  AdvisorOptions options;
  options.optimizer.strategy = SolveStrategy::kBip;
  options.optimizer.capture_bip = &capture;
  Advisor advisor(options);
  auto rec = advisor.Recommend(workload, mix);
  if (!rec.ok()) {
    std::fprintf(stderr, "FATAL [advise %s]: %s\n", mix.c_str(),
                 rec.status().ToString().c_str());
    std::exit(1);
  }
  if (!capture.captured) {
    std::fprintf(stderr, "FATAL [advise %s]: BIP was not captured\n",
                 mix.c_str());
    std::exit(1);
  }
  Instance inst;
  inst.name = "rubis_" + mix;
  inst.lp = std::move(capture.lp);
  inst.binaries = std::move(capture.binary_vars);
  return inst;
}

/// Captures the joint multi-period BIP (optimizer/horizon.h): a horizon of
/// `num_windows` windows alternating bidding→browsing, whose per-window
/// activation binaries are coupled by transition variables — the
/// comparison table's instances with multi-period block structure (W
/// diagonal window blocks plus inter-window coupling rows) that no
/// single-window capture exercises. Adjacent windows always differ in mix,
/// so the horizon optimizer keeps every window as its own group.
Instance CaptureHorizonBip(const Workload& workload, int num_windows) {
  BipCapture capture;
  AdvisorOptions options;
  options.optimizer.strategy = SolveStrategy::kBip;
  Advisor advisor(options);
  const char* mixes[] = {rubis::kBiddingMix, rubis::kBrowsingMix};
  WorkloadHorizon horizon;
  for (int w = 0; w < num_windows; ++w) {
    HorizonWindow window;
    window.label = std::string(mixes[w % 2]) + "_w" + std::to_string(w);
    window.mix = mixes[w % 2];
    window.duration = 5.0;
    horizon.windows.push_back(std::move(window));
  }
  HorizonPlanOptions plan_options;
  plan_options.capture_bip = &capture;
  auto plan = advisor.PlanHorizon(workload, horizon, plan_options);
  if (!plan.ok()) {
    std::fprintf(stderr, "FATAL [plan horizon]: %s\n",
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  if (!capture.captured) {
    std::fprintf(stderr, "FATAL [plan horizon]: joint BIP was not captured\n");
    std::exit(1);
  }
  Instance inst;
  inst.name = "rubis_horizon" + std::to_string(num_windows);
  inst.lp = std::move(capture.lp);
  inst.binaries = std::move(capture.binary_vars);
  return inst;
}

int CompareMain(const std::string& json_path) {
  // Per-solve ceiling for the dense branch-and-bound replays; the reported
  // speedup is then a lower bound when the dense engine times out.
  constexpr double kBipTimeLimitSeconds = 120.0;

  std::vector<Instance> instances;
  for (int n : {200, 400, 800}) {
    Instance inst;
    inst.name = "cover_lp" + std::to_string(n);
    inst.lp = MakeCoverLp(n, n / 2, 42);
    instances.push_back(std::move(inst));
  }
  {
    Instance inst;
    inst.name = "cover_bip160";
    inst.lp = MakeCoverLp(160, 80, 7);
    for (int v = 0; v < 160; ++v) inst.binaries.push_back(v);
    instances.push_back(std::move(inst));
  }
  // Real advisor instances: paper-like RUBiS entity counts, one BIP per
  // mix. browsing drops the write transactions, so its BIP is smaller.
  auto graph = rubis::MakeGraph();
  if (!graph.ok()) {
    std::fprintf(stderr, "FATAL [model]: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  auto workload = rubis::MakeWorkload(**graph);
  if (!workload.ok()) {
    std::fprintf(stderr, "FATAL [workload]: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  for (const char* mix :
       {rubis::kBrowsingMix, rubis::kBiddingMix, rubis::kWrite100xMix}) {
    instances.push_back(CaptureRubisBip(**workload, mix));
  }
  // The largest RUBiS-derived instance: the bidding workload cloned 3x.
  {
    std::unique_ptr<Workload> scaled = ScaleWorkload(**workload, 3);
    Instance inst = CaptureRubisBip(*scaled, Workload::kDefaultMix);
    inst.name = "rubis_x3";
    instances.push_back(std::move(inst));
  }
  // The multi-period instances: joint two- and four-window horizon BIPs.
  instances.push_back(CaptureHorizonBip(**workload, 2));
  instances.push_back(CaptureHorizonBip(**workload, 4));

  bench::BenchJsonWriter json;
  if (!json.Open(json_path, "solver_micro")) return 1;

  std::printf("%-18s %7s %7s %9s | %10s %10s %10s %8s | %s\n", "instance",
              "vars", "rows", "nnz", "fact", "sparse", "dense", "speedup",
              "objectives");
  bool diverged_any = false;
  for (Instance& inst : instances) {
    const bool is_bip = !inst.binaries.empty();
    LpResult fact_lp, sparse_lp, dense_lp;
    const double fact_lp_ms =
        TimeLpMs(inst.lp, LpEngine::kFactorized, &fact_lp);
    const double sparse_lp_ms = TimeLpMs(inst.lp, LpEngine::kSparse, &sparse_lp);
    const double dense_lp_ms = TimeLpMs(inst.lp, LpEngine::kDense, &dense_lp);
    // The relaxation has one optimal value; the engine matrix must agree on
    // it. The tableau pair shares a pivot path, so 1e-6 guards against
    // logic divergence; the factorized engine follows its own
    // floating-point path and is held to solver-tolerance agreement. This
    // is the CI divergence gate.
    const double lp_scale =
        std::max({1.0, std::abs(sparse_lp.objective),
                  std::abs(dense_lp.objective)});
    bool diverged =
        sparse_lp.status != dense_lp.status ||
        fact_lp.status != sparse_lp.status ||
        std::abs(sparse_lp.objective - dense_lp.objective) > 1e-6 * lp_scale ||
        std::abs(fact_lp.objective - sparse_lp.objective) > 1e-7 * lp_scale;

    // End-of-solve fill per SolveLog: stored tableau entries vs stored
    // factor entries. The tentpole's acceptance asks for >=5x less on
    // cover_lp800.
    const uint64_t sparse_fill = FillEndOf(inst.lp, LpEngine::kSparse);
    const uint64_t fact_fill = FillEndOf(inst.lp, LpEngine::kFactorized);

    double fact_bip_ms = 0.0, sparse_bip_ms = 0.0, dense_bip_ms = 0.0;
    bool presolve_diverged = false;
    bool thread_diverged = false;
    BipResult fact_bip, sparse_bip, dense_bip;
    if (is_bip) {
      fact_bip_ms = TimeBipMs(inst.lp, inst.binaries, LpEngine::kFactorized,
                              kBipTimeLimitSeconds, &fact_bip);
      sparse_bip_ms = TimeBipMs(inst.lp, inst.binaries, LpEngine::kSparse,
                                kBipTimeLimitSeconds, &sparse_bip);
      dense_bip_ms = TimeBipMs(inst.lp, inst.binaries, LpEngine::kDense,
                               kBipTimeLimitSeconds, &dense_bip);
      // Branch-and-bound stops inside its MIP gap, so two engines may
      // legitimately return different incumbents within twice the gap;
      // only a larger disagreement (with both solves proven) is real.
      auto bip_pair_diverged = [](const BipResult& a, const BipResult& b) {
        if (a.status != BipStatus::kOptimal || b.status != BipStatus::kOptimal) {
          return false;
        }
        const double gap_tol =
            2.0 * BipOptions().relative_gap *
                std::max(std::abs(a.objective), std::abs(b.objective)) +
            1e-9;
        return std::abs(a.objective - b.objective) > gap_tol;
      };
      diverged = diverged || bip_pair_diverged(sparse_bip, dense_bip) ||
                 bip_pair_diverged(fact_bip, sparse_bip);
      // Presolve gate: the reductions are exact and cost-independent, so
      // branch-and-bound must select the same binary assignment with
      // presolve disabled — not merely the same objective.
      BipOptions no_presolve;
      no_presolve.lp_engine = LpEngine::kSparse;
      no_presolve.time_limit_seconds = kBipTimeLimitSeconds;
      no_presolve.presolve = false;
      BipResult raw = SolveBip(inst.lp, inst.binaries, no_presolve);
      presolve_diverged = raw.status != sparse_bip.status;
      if (!presolve_diverged && sparse_bip.status == BipStatus::kOptimal) {
        for (int v : inst.binaries) {
          if (std::lround(sparse_bip.x[static_cast<size_t>(v)]) !=
              std::lround(raw.x[static_cast<size_t>(v)])) {
            presolve_diverged = true;
            break;
          }
        }
      }
      // Thread-count invariance gate: pooled branch-and-bound must return
      // byte-for-byte the serial result — same objective bits, same
      // solution vector, same trajectory statistics.
      for (const size_t nthreads : {size_t{2}, size_t{8}}) {
        util::ThreadPool pool(nthreads);
        BipResult pooled;
        TimeBipMs(inst.lp, inst.binaries, LpEngine::kFactorized,
                  kBipTimeLimitSeconds, &pooled, &pool);
        if (pooled.status != fact_bip.status ||
            pooled.objective != fact_bip.objective || pooled.x != fact_bip.x ||
            pooled.nodes_explored != fact_bip.nodes_explored ||
            pooled.lp_iterations != fact_bip.lp_iterations) {
          thread_diverged = true;
        }
      }
      diverged = diverged || presolve_diverged || thread_diverged;
    }
    diverged_any = diverged_any || diverged;

    const double fact_ms = is_bip ? fact_bip_ms : fact_lp_ms;
    const double sparse_ms = is_bip ? sparse_bip_ms : sparse_lp_ms;
    const double dense_ms = is_bip ? dense_bip_ms : dense_lp_ms;
    const double speedup = sparse_ms > 0.0 ? dense_ms / sparse_ms : 0.0;
    // The headline gain: factorized over the previous (sparse tableau)
    // default.
    const double fact_speedup = fact_ms > 0.0 ? sparse_ms / fact_ms : 0.0;
    std::printf(
        "%-18s %7d %7d %9zu | %8.2fms %8.2fms %8.2fms %7.2fx | %.6g vs %.6g%s\n",
        inst.name.c_str(), inst.lp.num_variables(), inst.lp.num_rows(),
        inst.lp.num_nonzeros(), fact_ms, sparse_ms, dense_ms, fact_speedup,
        is_bip ? fact_bip.objective : fact_lp.objective,
        is_bip ? sparse_bip.objective : sparse_lp.objective,
        diverged ? "  DIVERGED" : "");

    bench::BenchJsonWriter::Record record = json.Instance(inst.name);
    record.Metric("vars", inst.lp.num_variables())
        .Metric("rows", inst.lp.num_rows())
        .Metric("nnz", static_cast<double>(inst.lp.num_nonzeros()))
        .Metric("fact_lp_ms", fact_lp_ms)
        .Metric("sparse_lp_ms", sparse_lp_ms)
        .Metric("dense_lp_ms", dense_lp_ms)
        .Metric("fact_lp_objective", fact_lp.objective)
        .Metric("sparse_lp_objective", sparse_lp.objective)
        .Metric("dense_lp_objective", dense_lp.objective)
        .Metric("sparse_fill_end", static_cast<double>(sparse_fill))
        .Metric("fact_fill_end", static_cast<double>(fact_fill));
    if (is_bip) {
      record.Metric("fact_bip_ms", fact_bip_ms)
          .Metric("sparse_bip_ms", sparse_bip_ms)
          .Metric("dense_bip_ms", dense_bip_ms)
          .Metric("fact_bip_objective", fact_bip.objective)
          .Metric("sparse_bip_objective", sparse_bip.objective)
          .Metric("dense_bip_objective", dense_bip.objective)
          .Label("fact_bip_status", BipStatusName(fact_bip.status))
          .Label("sparse_bip_status", BipStatusName(sparse_bip.status))
          .Label("dense_bip_status", BipStatusName(dense_bip.status))
          .Label("presolve_diverged", presolve_diverged)
          .Label("thread_diverged", thread_diverged);
    }
    record.Metric("speedup", speedup)
        .Metric("fact_speedup", fact_speedup)
        .Label("kind", is_bip ? "bip" : "lp")
        .Label("diverged", diverged);
  }
  json.Close();
  if (diverged_any) {
    std::fprintf(stderr,
                 "error: engine optima diverged (or a presolve/thread gate "
                 "failed) on at least one instance\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace nose

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return nose::CompareMain(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
