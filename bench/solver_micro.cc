// Microbenchmarks of the LP/BIP solver substrate (google-benchmark):
// simplex solve time vs problem size, and branch-and-bound on knapsack-like
// binary programs. These bound the optimizer's per-node cost.

#include <benchmark/benchmark.h>

#include "solver/bip.h"
#include "solver/lp.h"
#include "util/rng.h"

namespace nose {
namespace {

/// Random feasible covering-style LP: minimize positive costs subject to
/// >= rows, which is always feasible (upper bounds at 1, rhs <= row size).
LpProblem MakeCoverLp(int vars, int rows, uint64_t seed) {
  Rng rng(seed);
  LpProblem lp;
  for (int v = 0; v < vars; ++v) {
    lp.AddVariable(0.0, 1.0, 1.0 + static_cast<double>(rng.Uniform(100)));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> coeffs;
    const int nnz = 3 + static_cast<int>(rng.Uniform(8));
    for (int k = 0; k < nnz; ++k) {
      coeffs.emplace_back(static_cast<int>(rng.Uniform(vars)), 1.0);
    }
    lp.AddRow(RowType::kGe, 1.0 + static_cast<double>(rng.Uniform(2)),
              std::move(coeffs));
  }
  return lp;
}

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LpProblem lp = MakeCoverLp(n, n / 2, 42);
  for (auto _ : state) {
    LpResult r = lp.Solve();
    benchmark::DoNotOptimize(r.objective);
  }
  state.SetLabel("vars=" + std::to_string(n) +
                 " rows=" + std::to_string(n / 2));
}
BENCHMARK(BM_SimplexSolve)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800);

void BM_BipSolveCover(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LpProblem lp = MakeCoverLp(n, n / 2, 7);
  std::vector<int> binaries(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) binaries[static_cast<size_t>(v)] = v;
  for (auto _ : state) {
    BipResult r = SolveBip(lp, binaries);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BipSolveCover)->Arg(20)->Arg(40)->Arg(80)->Arg(160);

void BM_BipKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  LpProblem lp;
  std::vector<std::pair<int, double>> weights;
  for (int v = 0; v < n; ++v) {
    lp.AddVariable(0.0, 1.0, -(1.0 + static_cast<double>(rng.Uniform(50))));
    weights.emplace_back(v, 1.0 + static_cast<double>(rng.Uniform(20)));
  }
  lp.AddRow(RowType::kLe, 5.0 * n, std::move(weights));
  std::vector<int> binaries(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) binaries[static_cast<size_t>(v)] = v;
  for (auto _ : state) {
    BipResult r = SolveBip(lp, binaries);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_BipKnapsack)->Arg(20)->Arg(40)->Arg(80);

}  // namespace
}  // namespace nose

BENCHMARK_MAIN();
