// Reproduces Fig. 12: weighted average response time across workload
// mixes — Browsing (read-only), Bidding, and the bidding mix with write
// transactions scaled 10x and 100x — for the NoSE / Normalized / Expert
// schemas. NoSE advises every mix in one shared-pool pass
// (Advisor::AdviseAllMixes): the three bidding-derived mixes weight the
// same statement set, so candidate enumeration and plan spaces run once
// and only the BIP re-solves per mix. The baselines are fixed.
//
//   fig12_mixes [--compare] [--json FILE]
//
// --compare additionally re-advises each mix with the per-mix path
// (Advisor::Recommend), checks the recommendations are identical, and
// reports both advising wall times; --json appends nose-bench-v1 records
// (one "advising" record plus one per mix) to FILE.
//
// Environment: NOSE_RUBIS_SCALE (default 0.25), NOSE_FIG12_TRANSACTIONS
// (default 1500 sampled transactions per mix).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/rubis_driver.h"
#include "util/rng.h"

namespace nose::bench {
namespace {

/// Weight of `tx` under a mix.
double TxWeight(const rubis::Transaction& tx, const std::string& mix) {
  if (mix == rubis::kBrowsingMix) return tx.browsing_weight;
  double w = tx.bidding_weight;
  if (tx.is_write && mix == rubis::kWrite10xMix) w *= 10.0;
  if (tx.is_write && mix == rubis::kWrite100xMix) w *= 100.0;
  return w;
}

int Main(int argc, char** argv) {
  bool compare = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare") == 0) {
      compare = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: fig12_mixes [--compare] [--json FILE]\n");
      return 2;
    }
  }
  const char* env = std::getenv("NOSE_FIG12_TRANSACTIONS");
  const int samples = env != nullptr ? std::atoi(env) : 1500;

  BenchJsonWriter json;
  if (!json_path.empty() && !json.Open(json_path, "fig12_mixes")) {
    return 1;
  }

  RubisBench bench;
  std::printf("Fig. 12 — weighted average response time per workload mix "
              "(%d sampled transactions each)\n\n",
              samples);

  const std::vector<std::pair<std::string, std::string>> mixes = {
      {"Browsing", rubis::kBrowsingMix},
      {"Bidding", rubis::kBiddingMix},
      {"10x", rubis::kWrite10xMix},
      {"100x", rubis::kWrite100xMix},
  };

  // One shared-pool advising pass covers every mix: the bidding-derived
  // mixes reuse one candidate pool and one set of plan spaces.
  std::vector<std::string> mix_names;
  for (const auto& [label, mix] : mixes) mix_names.push_back(mix);
  const double shared_seconds = bench.PrepareNoseRecommendations(mix_names);
  std::printf("NoSE advising (shared pool, %zu mixes): %.2fs\n", mixes.size(),
              shared_seconds);

  double per_mix_seconds = 0.0;
  if (compare) {
    // Baseline: advise each mix independently, and insist the shared-pool
    // recommendations are the ones the per-mix path produces.
    Advisor advisor;
    Stopwatch watch;
    std::vector<Recommendation> baseline;
    for (const auto& [label, mix] : mixes) {
      auto rec = advisor.Recommend(bench.workload(), mix);
      if (!rec.ok()) RubisBench::Die("advisor/" + mix, rec.status());
      baseline.push_back(std::move(rec).value());
    }
    per_mix_seconds = watch.ElapsedSeconds();
    std::printf("NoSE advising (per-mix baseline):       %.2fs (%.2fx)\n",
                per_mix_seconds, per_mix_seconds / shared_seconds);
    for (size_t k = 0; k < mixes.size(); ++k) {
      const Recommendation* shared = bench.StagedNoseRecommendation(mixes[k].second);
      if (shared == nullptr ||
          shared->ToString() != baseline[k].ToString() ||
          shared->objective != baseline[k].objective) {
        std::fprintf(stderr,
                     "error: shared-pool recommendation for mix %s differs "
                     "from the per-mix path\n",
                     mixes[k].second.c_str());
        return 1;
      }
      std::printf("  %-10s bb nodes: shared %d, per-mix %d\n",
                  mixes[k].first.c_str(), shared->bb_nodes,
                  baseline[k].bb_nodes);
    }
    std::printf("per-mix and shared-pool recommendations are identical\n");
  }
  std::printf("\n%-10s %12s %12s %12s   (avg simulated ms/transaction)\n",
              "Mix", "NoSE", "Normalized", "Expert");

  for (const auto& [label, mix] : mixes) {
    // Cumulative transaction distribution for this mix.
    std::vector<const rubis::Transaction*> txs;
    std::vector<double> cdf;
    double total = 0.0;
    for (const rubis::Transaction& tx : rubis::Transactions()) {
      const double w = TxWeight(tx, mix);
      if (w <= 0.0) continue;
      total += w;
      txs.push_back(&tx);
      cdf.push_back(total);
    }

    auto nose = bench.MakeNose(mix);
    auto normalized = bench.MakeNormalized(mix);
    auto expert = bench.MakeExpert(mix);
    SchemaUnderTest* suts[3] = {nose.get(), normalized.get(), expert.get()};

    double avg[3] = {0, 0, 0};
    for (int s = 0; s < 3; ++s) {
      Rng pick(0xF16'12);  // identical transaction stream per schema
      rubis::ParamGenerator gen(&bench.data(), 0xF16'12 + 31 * s);
      double sum = 0.0;
      for (int i = 0; i < samples; ++i) {
        const double u = pick.NextDouble() * total;
        size_t t = 0;
        while (t + 1 < cdf.size() && cdf[t] < u) ++t;
        sum += bench.RunTransaction(suts[s], *txs[t], &gen);
      }
      avg[s] = sum / samples;
    }
    std::printf("%-10s %12.3f %12.3f %12.3f\n", label.c_str(), avg[0], avg[1],
                avg[2]);
    json.Instance(mix)
        .Metric("samples", static_cast<double>(samples))
        .Metric("nose_ms", avg[0])
        .Metric("normalized_ms", avg[1])
        .Metric("expert_ms", avg[2]);
  }
  std::printf(
      "\npaper shape check: NoSE wins Browsing/Bidding/10x; under 100x the "
      "Expert schema closes in (it shares support work NoSE re-fetches).\n");

  {
    auto record = json.Instance("advising");
    record.Metric("mixes", static_cast<double>(mixes.size()))
        .Metric("shared_pool_advise_seconds", shared_seconds);
    if (compare) {
      record.Metric("per_mix_advise_seconds", per_mix_seconds)
          .Metric("speedup", per_mix_seconds / shared_seconds);
    }
    record.Label("compare", compare);
  }
  json.Close();
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main(int argc, char** argv) { return nose::bench::Main(argc, argv); }
