// Reproduces Fig. 12: weighted average response time across workload
// mixes — Browsing (read-only), Bidding, and the bidding mix with write
// transactions scaled 10x and 100x — for the NoSE / Normalized / Expert
// schemas. NoSE re-advises per mix (each mix yields a different schema);
// the baselines are fixed.
//
// Environment: NOSE_RUBIS_SCALE (default 0.25), NOSE_FIG12_TRANSACTIONS
// (default 1500 sampled transactions per mix).

#include <cstdio>
#include <vector>

#include "bench/rubis_driver.h"
#include "util/rng.h"

namespace nose::bench {
namespace {

/// Weight of `tx` under a mix.
double TxWeight(const rubis::Transaction& tx, const std::string& mix) {
  if (mix == rubis::kBrowsingMix) return tx.browsing_weight;
  double w = tx.bidding_weight;
  if (tx.is_write && mix == rubis::kWrite10xMix) w *= 10.0;
  if (tx.is_write && mix == rubis::kWrite100xMix) w *= 100.0;
  return w;
}

int Main() {
  const char* env = std::getenv("NOSE_FIG12_TRANSACTIONS");
  const int samples = env != nullptr ? std::atoi(env) : 1500;

  RubisBench bench;
  std::printf("Fig. 12 — weighted average response time per workload mix "
              "(%d sampled transactions each)\n\n",
              samples);
  std::printf("%-10s %12s %12s %12s   (avg simulated ms/transaction)\n",
              "Mix", "NoSE", "Normalized", "Expert");

  const std::vector<std::pair<std::string, std::string>> mixes = {
      {"Browsing", rubis::kBrowsingMix},
      {"Bidding", rubis::kBiddingMix},
      {"10x", rubis::kWrite10xMix},
      {"100x", rubis::kWrite100xMix},
  };

  for (const auto& [label, mix] : mixes) {
    // Cumulative transaction distribution for this mix.
    std::vector<const rubis::Transaction*> txs;
    std::vector<double> cdf;
    double total = 0.0;
    for (const rubis::Transaction& tx : rubis::Transactions()) {
      const double w = TxWeight(tx, mix);
      if (w <= 0.0) continue;
      total += w;
      txs.push_back(&tx);
      cdf.push_back(total);
    }

    auto nose = bench.MakeNose(mix);
    auto normalized = bench.MakeNormalized(mix);
    auto expert = bench.MakeExpert(mix);
    SchemaUnderTest* suts[3] = {nose.get(), normalized.get(), expert.get()};

    double avg[3] = {0, 0, 0};
    for (int s = 0; s < 3; ++s) {
      Rng pick(0xF16'12);  // identical transaction stream per schema
      rubis::ParamGenerator gen(&bench.data(), 0xF16'12 + 31 * s);
      double sum = 0.0;
      for (int i = 0; i < samples; ++i) {
        const double u = pick.NextDouble() * total;
        size_t t = 0;
        while (t + 1 < cdf.size() && cdf[t] < u) ++t;
        sum += bench.RunTransaction(suts[s], *txs[t], &gen);
      }
      avg[s] = sum / samples;
    }
    std::printf("%-10s %12.3f %12.3f %12.3f\n", label.c_str(), avg[0], avg[1],
                avg[2]);
  }
  std::printf(
      "\npaper shape check: NoSE wins Browsing/Bidding/10x; under 100x the "
      "Expert schema closes in (it shares support work NoSE re-fetches).\n");
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main() { return nose::bench::Main(); }
