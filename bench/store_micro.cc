// Microbenchmarks of the in-memory record store (google-benchmark): put
// and get throughput over varying partition layouts. Wall-clock here, not
// simulated time — this bounds how fast the executor-driven experiments
// can run, independent of the latency model they report.
//
//   store_micro [--json FILE] [google-benchmark flags]
//
// --json appends one nose-bench-v1 record per benchmark run (instance
// "BM_StoreGetPartition/100" etc., metrics real_time_ns / cpu_time_ns /
// iterations and items_per_second when reported) to FILE.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "store/record_store.h"
#include "util/rng.h"

namespace nose {
namespace {

void BM_StorePut(benchmark::State& state) {
  RecordStore store;
  (void)store.CreateColumnFamily("cf", 1, 1, 2);
  Rng rng(1);
  int64_t i = 0;
  for (auto _ : state) {
    const int64_t partition = static_cast<int64_t>(rng.Uniform(1000));
    Status s = store.Put("cf", {partition}, {i++},
                         {Value(static_cast<int64_t>(42)), Value(3.5)});
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StorePut);

void BM_StoreGetPartition(benchmark::State& state) {
  const int64_t rows_per_partition = state.range(0);
  RecordStore store;
  (void)store.CreateColumnFamily("cf", 1, 1, 1);
  for (int64_t p = 0; p < 100; ++p) {
    for (int64_t r = 0; r < rows_per_partition; ++r) {
      (void)store.Put("cf", {p}, {r}, {Value(r * 2)});
    }
  }
  Rng rng(2);
  for (auto _ : state) {
    auto rows = store.Get("cf", {static_cast<int64_t>(rng.Uniform(100))});
    benchmark::DoNotOptimize(rows->size());
  }
  state.SetItemsProcessed(state.iterations() * rows_per_partition);
}
BENCHMARK(BM_StoreGetPartition)->Arg(10)->Arg(100)->Arg(1000);

void BM_StoreRangeScan(benchmark::State& state) {
  RecordStore store;
  (void)store.CreateColumnFamily("cf", 1, 1, 1);
  for (int64_t r = 0; r < 10000; ++r) {
    (void)store.Put("cf", {static_cast<int64_t>(0)}, {r}, {Value(r)});
  }
  Rng rng(3);
  for (auto _ : state) {
    const int64_t lo = static_cast<int64_t>(rng.Uniform(9000));
    auto rows = store.Get("cf", {static_cast<int64_t>(0)}, {},
                          RangeBound{PredicateOp::kGe, lo});
    benchmark::DoNotOptimize(rows->size());
  }
}
BENCHMARK(BM_StoreRangeScan);

void BM_StoreClusteringPrefix(benchmark::State& state) {
  RecordStore store;
  (void)store.CreateColumnFamily("cf", 1, 2, 1);
  for (int64_t a = 0; a < 100; ++a) {
    for (int64_t b = 0; b < 100; ++b) {
      (void)store.Put("cf", {static_cast<int64_t>(0)}, {a, b}, {Value(a + b)});
    }
  }
  Rng rng(4);
  for (auto _ : state) {
    auto rows = store.Get("cf", {static_cast<int64_t>(0)},
                          {static_cast<int64_t>(rng.Uniform(100))});
    benchmark::DoNotOptimize(rows->size());
  }
}
BENCHMARK(BM_StoreClusteringPrefix);

/// Console output as usual, plus one nose-bench-v1 record per run.
class BenchJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit BenchJsonReporter(bench::BenchJsonWriter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      // Adjusted times are per-iteration in the run's time unit; every
      // benchmark here uses the default (nanoseconds).
      auto record = json_->Instance(run.benchmark_name());
      record.Metric("real_time_ns", run.GetAdjustedRealTime())
          .Metric("cpu_time_ns", run.GetAdjustedCPUTime())
          .Metric("iterations", static_cast<double>(run.iterations));
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        record.Metric("items_per_second", items->second.value);
      }
    }
  }

 private:
  bench::BenchJsonWriter* json_;
};

}  // namespace
}  // namespace nose

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  nose::bench::BenchJsonWriter json;
  if (!json_path.empty() && !json.Open(json_path, "store_micro")) return 1;
  nose::BenchJsonReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
