// Drift-and-migration benchmark for the online evolution loop.
//
// Part 1 measures re-advise latency, incremental vs. cold, on the RUBiS
// workload: after a first advise on the bidding mix, re-advising a drifted
// mix over the same statement set reuses the interned candidate pool, the
// cached plan spaces and the root-LP basis —
// against a cold Advisor::Recommend on the same mix. Both paths must
// produce byte-identical recommendations; the benchmark aborts otherwise.
//
// Part 2 replays the bundled Bidding -> Browsing drift scenario through the
// EvolveController and reports re-advise latency and migration cost
// (backfilled rows, catch-up updates, simulated milliseconds) per
// migration.
//
//   evolve_drift [--json FILE] [scenario-file]
//
// --json appends nose-bench-v1 records — a "readvise" record with the
// warm/cold latencies and a "scenario" record with the controller replay —
// to FILE.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "bench/rubis_driver.h"
#include "evolve/driver.h"
#include "evolve/incremental_advisor.h"
#include "evolve/scenario.h"
#include "util/stopwatch.h"

namespace nose {
namespace {

int Main(int argc, char** argv) {
  std::string json_path;
  std::string scenario_arg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (argv[i][0] != '-' && scenario_arg.empty()) {
      scenario_arg = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: evolve_drift [--json FILE] [scenario-file]\n");
      return 2;
    }
  }
  bench::BenchJsonWriter json;
  if (!json_path.empty() && !json.Open(json_path, "evolve_drift")) {
    return 1;
  }

  // ---- Part 1: incremental vs. cold re-advise at equal recommendations.
  bench::RubisBench env;
  Workload& workload = const_cast<Workload&>(env.workload());
  // A drifted mix over the full bidding statement set: halfway between
  // bidding and browsing weights, so every statement keeps nonzero weight
  // (same signature => the fully incremental path) while the optimum moves.
  for (const WorkloadEntry& entry : workload.entries()) {
    const double w = 0.5 * entry.WeightIn(rubis::kBiddingMix) +
                     0.5 * entry.WeightIn(rubis::kBrowsingMix);
    if (w <= 0.0) continue;
    Status s = workload.SetWeight(entry.name, "drift50", w);
    if (!s.ok()) bench::RubisBench::Die("drift50", s);
  }

  evolve::IncrementalAdvisor incremental;
  auto first = incremental.Advise(workload, rubis::kBiddingMix);
  if (!first.ok()) bench::RubisBench::Die("advise bidding", first.status());

  Stopwatch watch;
  auto warm = incremental.Advise(workload, "drift50");
  if (!warm.ok()) bench::RubisBench::Die("advise drift50 warm", warm.status());
  const double warm_ms = watch.ElapsedMillis();

  watch.Reset();
  Advisor cold_advisor;
  auto cold = cold_advisor.Recommend(workload, "drift50");
  if (!cold.ok()) bench::RubisBench::Die("advise drift50 cold", cold.status());
  const double cold_ms = watch.ElapsedMillis();

  if (!warm->incremental) {
    std::fprintf(stderr, "FATAL: drift50 re-advise was not incremental\n");
    return 1;
  }
  if (warm->rec.ToString() != cold->ToString()) {
    std::fprintf(stderr,
                 "FATAL: incremental and cold recommendations differ\n");
    return 1;
  }
  std::printf("re-advise drift50 (equal recommendations):\n");
  std::printf("  incremental: %8.1f ms (pool+spaces+basis reused)\n",
              warm_ms);
  std::printf("  cold:        %8.1f ms\n", cold_ms);
  std::printf("  speedup:     %8.2fx\n", warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);
  json.Instance("readvise")
      .Metric("warm_ms", warm_ms)
      .Metric("cold_ms", cold_ms)
      .Metric("speedup", warm_ms > 0.0 ? cold_ms / warm_ms : 0.0)
      .Metric("schema_size", static_cast<double>(warm->rec.schema.size()))
      .Label("incremental", warm->incremental);

  // ---- Part 2: the bundled drift scenario through the controller.
  const std::string scenario_path =
      !scenario_arg.empty() ? scenario_arg : "workloads/rubis_drift.scenario";
  auto scenario = evolve::LoadScenarioFile(scenario_path);
  if (!scenario.ok()) bench::RubisBench::Die("scenario", scenario.status());
  auto runner = evolve::DriftRunner::Create(*scenario);
  if (!runner.ok()) bench::RubisBench::Die("runner", runner.status());
  watch.Reset();
  Status run = (*runner)->Run();
  if (!run.ok()) bench::RubisBench::Die("run", run);
  const double run_ms = watch.ElapsedMillis();

  const evolve::EvolveReport& report = (*runner)->report();
  std::printf("\ndrift scenario %s (%.1f ms wall):\n%s", scenario_path.c_str(),
              run_ms, report.ToString().c_str());
  if (report.invariant_violations > 0) {
    std::fprintf(stderr, "FATAL: invariant violations during migration\n");
    return 1;
  }
  for (const evolve::MigrationRecord& m : report.migrations) {
    if (m.verify_mismatches > 0 || m.aborted) {
      std::fprintf(stderr, "FATAL: migration failed verification\n");
      return 1;
    }
  }
  json.Instance("scenario")
      .Metric("run_ms", run_ms)
      .Metric("transactions", static_cast<double>(report.transactions))
      .Metric("statements", static_cast<double>(report.statements))
      .Metric("re_advises_incremental",
              static_cast<double>(report.re_advises_incremental))
      .Metric("re_advises_cold", static_cast<double>(report.re_advises_cold))
      .Metric("migrations", static_cast<double>(report.migrations.size()))
      .Metric("invariant_violations",
              static_cast<double>(report.invariant_violations));
  json.Close();
  return 0;
}

}  // namespace
}  // namespace nose

int main(int argc, char** argv) { return nose::Main(argc, argv); }
