// Checks the paper's §VII-B claim that "running NoSE for the RUBiS
// workload takes less than ten seconds", reporting the full phase
// breakdown for the real RUBiS workload at paper-like entity counts.

#include <cstdio>

#include "advisor/advisor.h"
#include "rubis/model.h"
#include "rubis/workload.h"

namespace nose::bench {
namespace {

int Main() {
  auto graph = rubis::MakeGraph();  // paper-like default counts
  if (!graph.ok()) return 1;
  auto workload = rubis::MakeWorkload(**graph);
  if (!workload.ok()) return 1;

  std::printf("Advisor runtime on the RUBiS workload (paper: < 10 s)\n\n");
  for (const char* mix :
       {rubis::kBiddingMix, rubis::kBrowsingMix, rubis::kWrite100xMix}) {
    Advisor advisor;
    auto rec = advisor.Recommend(**workload, mix);
    if (!rec.ok()) {
      std::printf("%-10s FAILED: %s\n", mix, rec.status().ToString().c_str());
      continue;
    }
    std::printf(
        "%-10s total %6.2fs  (enum %.2fs, cost %.2fs, build %.2fs, solve "
        "%.2fs, other %.2fs)  candidates=%zu schema=%zu bip=%dx%d nodes=%d\n",
        mix, rec->timing.total_seconds, rec->timing.enumeration_seconds,
        rec->timing.cost_calculation_seconds,
        rec->timing.bip_construction_seconds, rec->timing.bip_solve_seconds,
        rec->timing.other_seconds, rec->num_candidates, rec->schema.size(),
        rec->bip_variables, rec->bip_constraints, rec->bb_nodes);
  }
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main() { return nose::bench::Main(); }
