// Checks the paper's §VII-B claim that "running NoSE for the RUBiS
// workload takes less than ten seconds", reporting the full phase
// breakdown for the real RUBiS workload at paper-like entity counts.
//
//   advisor_runtime [--threads N] [--json FILE] [--trace FILE]
//                   [--metrics FILE]
//
// --threads sets the advisor's worker-thread count; --json appends one JSON
// object with the per-mix phase breakdown to FILE (bench_results/
// convention). --trace captures a Chrome trace_event timeline of the run;
// --metrics dumps the pipeline counter snapshot.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advisor/advisor.h"
#include "bench/bench_json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rubis/model.h"
#include "rubis/workload.h"

namespace nose::bench {
namespace {

int Main(int argc, char** argv) {
  size_t threads = 1;
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: advisor_runtime [--threads N] [--json FILE] "
                   "[--trace FILE] [--metrics FILE]\n");
      return 2;
    }
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::Global().Enable();
    obs::SetCurrentThreadName("main");
  }

  auto graph = rubis::MakeGraph();  // paper-like default counts
  if (!graph.ok()) return 1;
  auto workload = rubis::MakeWorkload(**graph);
  if (!workload.ok()) return 1;

  BenchJsonWriter json;
  if (!json_path.empty() && !json.Open(json_path, "advisor_runtime")) {
    return 1;
  }

  std::printf("Advisor runtime on the RUBiS workload (paper: < 10 s), "
              "threads=%zu\n\n",
              threads);
  for (const char* mix :
       {rubis::kBiddingMix, rubis::kBrowsingMix, rubis::kWrite100xMix}) {
    AdvisorOptions options;
    options.num_threads = threads;
    Advisor advisor(options);
    auto rec = advisor.Recommend(**workload, mix);
    if (!rec.ok()) {
      std::printf("%-10s FAILED: %s\n", mix, rec.status().ToString().c_str());
      continue;
    }
    std::printf(
        "%-10s total %6.2fs  (enum %.2fs, cost %.2fs, build %.2fs, solve "
        "%.2fs, other %.2fs)  candidates=%zu schema=%zu bip=%dx%d nodes=%d\n",
        mix, rec->timing.total_seconds, rec->timing.enumeration_seconds,
        rec->timing.cost_calculation_seconds,
        rec->timing.bip_construction_seconds, rec->timing.bip_solve_seconds,
        rec->timing.other_seconds, rec->num_candidates, rec->schema.size(),
        rec->bip_variables, rec->bip_constraints, rec->bb_nodes);
    json.Instance(mix)
        .Metric("threads", static_cast<double>(threads))
        .Metric("candidates", static_cast<double>(rec->num_candidates))
        .Metric("schema_size", static_cast<double>(rec->schema.size()))
        .Metric("objective", rec->objective)
        .Metric("enum_seconds", rec->timing.enumeration_seconds)
        .Metric("cost_seconds", rec->timing.cost_calculation_seconds)
        .Metric("build_seconds", rec->timing.bip_construction_seconds)
        .Metric("solve_seconds", rec->timing.bip_solve_seconds)
        .Metric("other_seconds", rec->timing.other_seconds)
        .Metric("total_seconds", rec->timing.total_seconds);
  }
  json.Close();
  if (!trace_path.empty()) {
    obs::TraceRecorder::Global().Disable();
    std::string error;
    if (!obs::TraceRecorder::Global().WriteChromeJson(trace_path, &error)) {
      std::fprintf(stderr, "error: cannot write trace: %s\n", error.c_str());
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    std::string error;
    if (!obs::MetricsRegistry::Global().WriteJson(metrics_path, &error)) {
      std::fprintf(stderr, "error: cannot write metrics: %s\n", error.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main(int argc, char** argv) { return nose::bench::Main(argc, argv); }
