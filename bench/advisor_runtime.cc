// Checks the paper's §VII-B claim that "running NoSE for the RUBiS
// workload takes less than ten seconds", reporting the full phase
// breakdown for the real RUBiS workload at paper-like entity counts.
//
//   advisor_runtime [--threads N] [--json FILE] [--trace FILE]
//                   [--metrics FILE]
//
// --threads sets the advisor's worker-thread count; --json appends one JSON
// object with the per-mix phase breakdown to FILE (bench_results/
// convention). --trace captures a Chrome trace_event timeline of the run;
// --metrics dumps the pipeline counter snapshot.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advisor/advisor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rubis/model.h"
#include "rubis/workload.h"

namespace nose::bench {
namespace {

int Main(int argc, char** argv) {
  size_t threads = 1;
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: advisor_runtime [--threads N] [--json FILE] "
                   "[--trace FILE] [--metrics FILE]\n");
      return 2;
    }
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::Global().Enable();
    obs::SetCurrentThreadName("main");
  }

  auto graph = rubis::MakeGraph();  // paper-like default counts
  if (!graph.ok()) return 1;
  auto workload = rubis::MakeWorkload(**graph);
  if (!workload.ok()) return 1;

  std::FILE* json = nullptr;
  if (!json_path.empty()) {
    json = std::fopen(json_path.c_str(), "a");
    if (json == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(json,
                 "{\"bench\":\"advisor_runtime\",\"threads\":%zu,\"mixes\":[",
                 threads);
  }

  std::printf("Advisor runtime on the RUBiS workload (paper: < 10 s), "
              "threads=%zu\n\n",
              threads);
  bool first_mix = true;
  for (const char* mix :
       {rubis::kBiddingMix, rubis::kBrowsingMix, rubis::kWrite100xMix}) {
    AdvisorOptions options;
    options.num_threads = threads;
    Advisor advisor(options);
    auto rec = advisor.Recommend(**workload, mix);
    if (!rec.ok()) {
      std::printf("%-10s FAILED: %s\n", mix, rec.status().ToString().c_str());
      continue;
    }
    std::printf(
        "%-10s total %6.2fs  (enum %.2fs, cost %.2fs, build %.2fs, solve "
        "%.2fs, other %.2fs)  candidates=%zu schema=%zu bip=%dx%d nodes=%d\n",
        mix, rec->timing.total_seconds, rec->timing.enumeration_seconds,
        rec->timing.cost_calculation_seconds,
        rec->timing.bip_construction_seconds, rec->timing.bip_solve_seconds,
        rec->timing.other_seconds, rec->num_candidates, rec->schema.size(),
        rec->bip_variables, rec->bip_constraints, rec->bb_nodes);
    if (json != nullptr) {
      std::fprintf(
          json,
          "%s{\"mix\":\"%s\",\"candidates\":%zu,\"schema_size\":%zu,"
          "\"objective\":%.17g,\"enum_seconds\":%.6f,\"cost_seconds\":%.6f,"
          "\"build_seconds\":%.6f,\"solve_seconds\":%.6f,"
          "\"other_seconds\":%.6f,\"total_seconds\":%.6f}",
          first_mix ? "" : ",", mix, rec->num_candidates, rec->schema.size(),
          rec->objective, rec->timing.enumeration_seconds,
          rec->timing.cost_calculation_seconds,
          rec->timing.bip_construction_seconds, rec->timing.bip_solve_seconds,
          rec->timing.other_seconds, rec->timing.total_seconds);
      first_mix = false;
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "]}\n");
    std::fclose(json);
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::Global().Disable();
    std::string error;
    if (!obs::TraceRecorder::Global().WriteChromeJson(trace_path, &error)) {
      std::fprintf(stderr, "error: cannot write trace: %s\n", error.c_str());
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    std::string error;
    if (!obs::MetricsRegistry::Global().WriteJson(metrics_path, &error)) {
      std::fprintf(stderr, "error: cannot write metrics: %s\n", error.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main(int argc, char** argv) { return nose::bench::Main(argc, argv); }
