// Reproduces Fig. 13: advisor runtime, broken into cost calculation / BIP
// construction / BIP solving / other, as the workload size grows. Random
// entity graphs (Watts-Strogatz) and random-walk statements mirror the
// paper's §VII-B setup; the scale factor multiplies both the number of
// entities and the number of statements.
//
//   fig13_scaling [--threads N] [--json FILE] [--max-scale N]
//                 [--solve-budget SECS] [--metrics FILE]
//
// --threads sets the advisor's worker-thread count (the recommendation is
// identical at any value; only the wall clock changes). --json appends the
// per-scale phase breakdown as nose-bench-v1 records to FILE so
// baseline-vs-threaded runs can be diffed. Environment
// fallbacks NOSE_FIG13_MAX_SCALE and NOSE_FIG13_SOLVE_BUDGET still work.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advisor/advisor.h"
#include "bench/bench_json.h"
#include "obs/metrics.h"
#include "randwl/random_workload.h"

namespace nose::bench {
namespace {

struct Args {
  size_t threads = 1;
  std::string json_path;
  std::string metrics_path;
  int max_scale = 5;
  double solve_budget = 45.0;
  bool ok = true;
};

Args Parse(int argc, char** argv) {
  Args args;
  if (const char* env = std::getenv("NOSE_FIG13_MAX_SCALE")) {
    args.max_scale = std::atoi(env);
  }
  if (const char* env = std::getenv("NOSE_FIG13_SOLVE_BUDGET")) {
    args.solve_budget = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s wants a value\n", argv[i]);
        args.ok = false;
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = value();
      if (v != nullptr) args.threads = static_cast<size_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = value();
      if (v != nullptr) args.json_path = v;
    } else if (std::strcmp(argv[i], "--max-scale") == 0) {
      const char* v = value();
      if (v != nullptr) args.max_scale = std::atoi(v);
    } else if (std::strcmp(argv[i], "--solve-budget") == 0) {
      const char* v = value();
      if (v != nullptr) args.solve_budget = std::atof(v);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      const char* v = value();
      if (v != nullptr) args.metrics_path = v;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      args.ok = false;
    }
    if (!args.ok) break;
  }
  return args;
}

int Main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  if (!args.ok) return 2;

  BenchJsonWriter json;
  if (!args.json_path.empty() && !json.Open(args.json_path, "fig13_scaling")) {
    return 1;
  }

  std::printf("Fig. 13 — advisor runtime vs workload scale factor\n");
  std::printf("base: 6 entities, 12 statements; scale multiplies both; "
              "threads=%zu\n\n",
              args.threads);
  std::printf("%5s %9s %9s %7s %9s %9s %9s %9s %9s\n", "scale", "entities",
              "stmts", "cands", "cost(s)", "build(s)", "solve(s)", "other(s)",
              "total(s)");

  for (int scale = 1; scale <= args.max_scale; ++scale) {
    randwl::GeneratorOptions gen;
    gen.num_entities = 6 * static_cast<size_t>(scale);
    gen.num_statements = 12 * static_cast<size_t>(scale);
    gen.seed = 4242 + static_cast<uint64_t>(scale);
    auto rw = randwl::Generate(gen);
    if (!rw.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   rw.status().ToString().c_str());
      return 1;
    }

    AdvisorOptions options;
    options.num_threads = args.threads;
    options.optimizer.bip.time_limit_seconds = args.solve_budget;
    // The second solve phase (schema-size minimization) is cosmetic and
    // budget-bound; excluded so the measurement tracks the core pipeline.
    options.optimizer.minimize_schema_size = false;
    Advisor advisor(options);
    auto rec = advisor.Recommend(*rw->workload);
    if (!rec.ok()) {
      std::printf("%5d  advisor failed: %s\n", scale,
                  rec.status().ToString().c_str());
      continue;
    }
    std::printf("%5d %9zu %9zu %7zu %9.2f %9.2f %9.2f %9.2f %9.2f\n", scale,
                gen.num_entities, gen.num_statements, rec->num_candidates,
                rec->timing.cost_calculation_seconds,
                rec->timing.bip_construction_seconds,
                rec->timing.bip_solve_seconds,
                rec->timing.other_seconds + rec->timing.enumeration_seconds,
                rec->timing.total_seconds);
    std::fflush(stdout);
    json.Instance("scale" + std::to_string(scale))
        .Metric("threads", static_cast<double>(args.threads))
        .Metric("entities", static_cast<double>(gen.num_entities))
        .Metric("statements", static_cast<double>(gen.num_statements))
        .Metric("candidates", static_cast<double>(rec->num_candidates))
        .Metric("schema_size", static_cast<double>(rec->schema.size()))
        .Metric("objective", rec->objective)
        .Metric("cost_seconds", rec->timing.cost_calculation_seconds)
        .Metric("build_seconds", rec->timing.bip_construction_seconds)
        .Metric("solve_seconds", rec->timing.bip_solve_seconds)
        .Metric("other_seconds",
                rec->timing.other_seconds + rec->timing.enumeration_seconds)
        .Metric("total_seconds", rec->timing.total_seconds);
  }
  json.Close();
  if (!args.metrics_path.empty()) {
    std::string error;
    if (!obs::MetricsRegistry::Global().WriteJson(args.metrics_path, &error)) {
      std::fprintf(stderr, "error: cannot write metrics: %s\n", error.c_str());
      return 1;
    }
  }
  std::printf(
      "\npaper shape check: runtime grows superlinearly with scale, and "
      "construction/cost phases dominate the raw BIP solving.\n");
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main(int argc, char** argv) { return nose::bench::Main(argc, argv); }
