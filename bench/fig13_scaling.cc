// Reproduces Fig. 13: advisor runtime, broken into cost calculation / BIP
// construction / BIP solving / other, as the workload size grows. Random
// entity graphs (Watts-Strogatz) and random-walk statements mirror the
// paper's §VII-B setup; the scale factor multiplies both the number of
// entities and the number of statements.
//
//   fig13_scaling [--threads N] [--json FILE] [--max-scale N]
//                 [--solve-budget SECS] [--metrics FILE]
//
// --threads sets the advisor's worker-thread count (the recommendation is
// identical at any value; only the wall clock changes). --json appends the
// per-scale phase breakdown as one JSON object to FILE (bench_results/
// convention) so baseline-vs-threaded runs can be diffed. Environment
// fallbacks NOSE_FIG13_MAX_SCALE and NOSE_FIG13_SOLVE_BUDGET still work.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "advisor/advisor.h"
#include "obs/metrics.h"
#include "randwl/random_workload.h"

namespace nose::bench {
namespace {

struct Args {
  size_t threads = 1;
  std::string json_path;
  std::string metrics_path;
  int max_scale = 5;
  double solve_budget = 45.0;
  bool ok = true;
};

Args Parse(int argc, char** argv) {
  Args args;
  if (const char* env = std::getenv("NOSE_FIG13_MAX_SCALE")) {
    args.max_scale = std::atoi(env);
  }
  if (const char* env = std::getenv("NOSE_FIG13_SOLVE_BUDGET")) {
    args.solve_budget = std::atof(env);
  }
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s wants a value\n", argv[i]);
        args.ok = false;
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = value();
      if (v != nullptr) args.threads = static_cast<size_t>(std::atoi(v));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      const char* v = value();
      if (v != nullptr) args.json_path = v;
    } else if (std::strcmp(argv[i], "--max-scale") == 0) {
      const char* v = value();
      if (v != nullptr) args.max_scale = std::atoi(v);
    } else if (std::strcmp(argv[i], "--solve-budget") == 0) {
      const char* v = value();
      if (v != nullptr) args.solve_budget = std::atof(v);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      const char* v = value();
      if (v != nullptr) args.metrics_path = v;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      args.ok = false;
    }
    if (!args.ok) break;
  }
  return args;
}

int Main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  if (!args.ok) return 2;

  std::FILE* json = nullptr;
  if (!args.json_path.empty()) {
    json = std::fopen(args.json_path.c_str(), "a");
    if (json == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", args.json_path.c_str());
      return 1;
    }
    std::fprintf(json, "{\"bench\":\"fig13_scaling\",\"threads\":%zu,"
                       "\"scales\":[",
                 args.threads);
  }

  std::printf("Fig. 13 — advisor runtime vs workload scale factor\n");
  std::printf("base: 6 entities, 12 statements; scale multiplies both; "
              "threads=%zu\n\n",
              args.threads);
  std::printf("%5s %9s %9s %7s %9s %9s %9s %9s %9s\n", "scale", "entities",
              "stmts", "cands", "cost(s)", "build(s)", "solve(s)", "other(s)",
              "total(s)");

  bool first_scale = true;
  for (int scale = 1; scale <= args.max_scale; ++scale) {
    randwl::GeneratorOptions gen;
    gen.num_entities = 6 * static_cast<size_t>(scale);
    gen.num_statements = 12 * static_cast<size_t>(scale);
    gen.seed = 4242 + static_cast<uint64_t>(scale);
    auto rw = randwl::Generate(gen);
    if (!rw.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   rw.status().ToString().c_str());
      if (json != nullptr) std::fclose(json);
      return 1;
    }

    AdvisorOptions options;
    options.num_threads = args.threads;
    options.optimizer.bip.time_limit_seconds = args.solve_budget;
    // The second solve phase (schema-size minimization) is cosmetic and
    // budget-bound; excluded so the measurement tracks the core pipeline.
    options.optimizer.minimize_schema_size = false;
    Advisor advisor(options);
    auto rec = advisor.Recommend(*rw->workload);
    if (!rec.ok()) {
      std::printf("%5d  advisor failed: %s\n", scale,
                  rec.status().ToString().c_str());
      continue;
    }
    std::printf("%5d %9zu %9zu %7zu %9.2f %9.2f %9.2f %9.2f %9.2f\n", scale,
                gen.num_entities, gen.num_statements, rec->num_candidates,
                rec->timing.cost_calculation_seconds,
                rec->timing.bip_construction_seconds,
                rec->timing.bip_solve_seconds,
                rec->timing.other_seconds + rec->timing.enumeration_seconds,
                rec->timing.total_seconds);
    std::fflush(stdout);
    if (json != nullptr) {
      std::fprintf(
          json,
          "%s{\"scale\":%d,\"entities\":%zu,\"statements\":%zu,"
          "\"candidates\":%zu,\"schema_size\":%zu,\"objective\":%.17g,"
          "\"cost_seconds\":%.6f,\"build_seconds\":%.6f,"
          "\"solve_seconds\":%.6f,\"other_seconds\":%.6f,"
          "\"total_seconds\":%.6f}",
          first_scale ? "" : ",", scale, gen.num_entities, gen.num_statements,
          rec->num_candidates, rec->schema.size(), rec->objective,
          rec->timing.cost_calculation_seconds,
          rec->timing.bip_construction_seconds, rec->timing.bip_solve_seconds,
          rec->timing.other_seconds + rec->timing.enumeration_seconds,
          rec->timing.total_seconds);
      first_scale = false;
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "]}\n");
    std::fclose(json);
  }
  if (!args.metrics_path.empty()) {
    std::string error;
    if (!obs::MetricsRegistry::Global().WriteJson(args.metrics_path, &error)) {
      std::fprintf(stderr, "error: cannot write metrics: %s\n", error.c_str());
      return 1;
    }
  }
  std::printf(
      "\npaper shape check: runtime grows superlinearly with scale, and "
      "construction/cost phases dominate the raw BIP solving.\n");
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main(int argc, char** argv) { return nose::bench::Main(argc, argv); }
