// Reproduces Fig. 13: advisor runtime, broken into cost calculation / BIP
// construction / BIP solving / other, as the workload size grows. Random
// entity graphs (Watts-Strogatz) and random-walk statements mirror the
// paper's §VII-B setup; the scale factor multiplies both the number of
// entities and the number of statements.
//
// Environment: NOSE_FIG13_MAX_SCALE (default 6), NOSE_FIG13_SOLVE_BUDGET
// seconds per BIP solve (default 60).

#include <cstdio>
#include <cstdlib>

#include "advisor/advisor.h"
#include "randwl/random_workload.h"

namespace nose::bench {
namespace {

int Main() {
  const char* env = std::getenv("NOSE_FIG13_MAX_SCALE");
  const int max_scale = env != nullptr ? std::atoi(env) : 5;
  const char* budget_env = std::getenv("NOSE_FIG13_SOLVE_BUDGET");
  const double solve_budget =
      budget_env != nullptr ? std::atof(budget_env) : 45.0;

  std::printf("Fig. 13 — advisor runtime vs workload scale factor\n");
  std::printf("base: 6 entities, 12 statements; scale multiplies both\n\n");
  std::printf("%5s %9s %9s %7s %9s %9s %9s %9s %9s\n", "scale", "entities",
              "stmts", "cands", "cost(s)", "build(s)", "solve(s)", "other(s)",
              "total(s)");

  for (int scale = 1; scale <= max_scale; ++scale) {
    randwl::GeneratorOptions gen;
    gen.num_entities = 6 * static_cast<size_t>(scale);
    gen.num_statements = 12 * static_cast<size_t>(scale);
    gen.seed = 4242 + static_cast<uint64_t>(scale);
    auto rw = randwl::Generate(gen);
    if (!rw.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   rw.status().ToString().c_str());
      return 1;
    }

    AdvisorOptions options;
    options.optimizer.bip.time_limit_seconds = solve_budget;
    // The second solve phase (schema-size minimization) is cosmetic and
    // budget-bound; excluded so the measurement tracks the core pipeline.
    options.optimizer.minimize_schema_size = false;
    Advisor advisor(options);
    auto rec = advisor.Recommend(*rw->workload);
    if (!rec.ok()) {
      std::printf("%5d  advisor failed: %s\n", scale,
                  rec.status().ToString().c_str());
      continue;
    }
    std::printf("%5d %9zu %9zu %7zu %9.2f %9.2f %9.2f %9.2f %9.2f\n", scale,
                gen.num_entities, gen.num_statements, rec->num_candidates,
                rec->timing.cost_calculation_seconds,
                rec->timing.bip_construction_seconds,
                rec->timing.bip_solve_seconds,
                rec->timing.other_seconds + rec->timing.enumeration_seconds,
                rec->timing.total_seconds);
    std::fflush(stdout);
  }
  std::printf(
      "\npaper shape check: runtime grows superlinearly with scale, and "
      "construction/cost phases dominate the raw BIP solving.\n");
  return 0;
}

}  // namespace
}  // namespace nose::bench

int main() { return nose::bench::Main(); }
