#!/usr/bin/env bash
# clang-tidy warning-count ratchet.
#
# Runs clang-tidy (config: .clang-tidy) over every first-party translation
# unit in the compilation database and compares the number of distinct
# warnings against the checked-in budget (ci/clang_tidy_budget.txt). The
# build fails when the count EXCEEDS the budget — new warnings cannot land —
# and prints a reminder to lower the budget when the count drops, so the
# ceiling only ever moves down.
#
# Usage: ci/check_clang_tidy.sh <build-dir>
# The build dir must have been configured with
#   -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
set -euo pipefail

build_dir=${1:-build}
budget_file="$(dirname "$0")/clang_tidy_budget.txt"

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "error: $build_dir/compile_commands.json not found" >&2
  echo "       configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

budget=$(tr -d '[:space:]' < "$budget_file")

# First-party sources only: third-party code in the database (gtest,
# benchmark) is not ours to lint.
mapfile -t sources < <(python3 - "$build_dir/compile_commands.json" <<'EOF'
import json, sys
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if "/src/" in f or "/tests/" in f or "/bench/" in f:
        print(f)
EOF
)

runner=$(command -v run-clang-tidy || command -v run-clang-tidy-18 || true)
log=$(mktemp)
if [[ -n "$runner" ]]; then
  "$runner" -p "$build_dir" -quiet "${sources[@]}" > "$log" 2>/dev/null || true
else
  for f in "${sources[@]}"; do
    clang-tidy -p "$build_dir" --quiet "$f" >> "$log" 2>/dev/null || true
  done
fi

# One line per distinct warning site; parallel runners may duplicate
# header-attributed findings across TUs.
count=$(grep -E '^[^ ]+:[0-9]+:[0-9]+: warning:' "$log" | sort -u | wc -l)

echo "clang-tidy: $count warning(s), budget $budget"
if (( count > budget )); then
  echo "FAIL: warning count exceeds the ratchet budget." >&2
  echo "Fix the new warnings (never raise $budget_file):" >&2
  grep -E '^[^ ]+:[0-9]+:[0-9]+: warning:' "$log" | sort -u | tail -n 20 >&2
  exit 1
fi
if (( count < budget )); then
  echo "NOTE: count is below budget; ratchet it down in $budget_file."
fi
