# Empty compiler generated dependencies file for fig12_mixes.
# This may be replaced when dependencies are built.
