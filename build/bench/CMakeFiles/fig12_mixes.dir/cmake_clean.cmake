file(REMOVE_RECURSE
  "CMakeFiles/fig12_mixes.dir/fig12_mixes.cc.o"
  "CMakeFiles/fig12_mixes.dir/fig12_mixes.cc.o.d"
  "fig12_mixes"
  "fig12_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
