file(REMOVE_RECURSE
  "CMakeFiles/ablation_enumeration.dir/ablation_enumeration.cc.o"
  "CMakeFiles/ablation_enumeration.dir/ablation_enumeration.cc.o.d"
  "ablation_enumeration"
  "ablation_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
