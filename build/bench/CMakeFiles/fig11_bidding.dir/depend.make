# Empty dependencies file for fig11_bidding.
# This may be replaced when dependencies are built.
