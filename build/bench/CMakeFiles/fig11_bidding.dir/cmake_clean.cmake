file(REMOVE_RECURSE
  "CMakeFiles/fig11_bidding.dir/fig11_bidding.cc.o"
  "CMakeFiles/fig11_bidding.dir/fig11_bidding.cc.o.d"
  "fig11_bidding"
  "fig11_bidding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bidding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
