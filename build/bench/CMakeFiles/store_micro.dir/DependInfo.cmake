
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/store_micro.cc" "bench/CMakeFiles/store_micro.dir/store_micro.cc.o" "gcc" "bench/CMakeFiles/store_micro.dir/store_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/nose_store.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nose_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/nose_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nose_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/nose_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
