# Empty dependencies file for store_micro.
# This may be replaced when dependencies are built.
