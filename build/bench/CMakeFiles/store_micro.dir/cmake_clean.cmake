file(REMOVE_RECURSE
  "CMakeFiles/store_micro.dir/store_micro.cc.o"
  "CMakeFiles/store_micro.dir/store_micro.cc.o.d"
  "store_micro"
  "store_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
