# Empty dependencies file for advisor_runtime.
# This may be replaced when dependencies are built.
