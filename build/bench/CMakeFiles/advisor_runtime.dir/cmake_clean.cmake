file(REMOVE_RECURSE
  "CMakeFiles/advisor_runtime.dir/advisor_runtime.cc.o"
  "CMakeFiles/advisor_runtime.dir/advisor_runtime.cc.o.d"
  "advisor_runtime"
  "advisor_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
