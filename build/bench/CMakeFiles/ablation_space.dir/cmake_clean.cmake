file(REMOVE_RECURSE
  "CMakeFiles/ablation_space.dir/ablation_space.cc.o"
  "CMakeFiles/ablation_space.dir/ablation_space.cc.o.d"
  "ablation_space"
  "ablation_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
