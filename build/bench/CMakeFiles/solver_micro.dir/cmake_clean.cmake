file(REMOVE_RECURSE
  "CMakeFiles/solver_micro.dir/solver_micro.cc.o"
  "CMakeFiles/solver_micro.dir/solver_micro.cc.o.d"
  "solver_micro"
  "solver_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
