file(REMOVE_RECURSE
  "CMakeFiles/hotel_execution.dir/hotel_execution.cpp.o"
  "CMakeFiles/hotel_execution.dir/hotel_execution.cpp.o.d"
  "hotel_execution"
  "hotel_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
