# Empty dependencies file for hotel_execution.
# This may be replaced when dependencies are built.
