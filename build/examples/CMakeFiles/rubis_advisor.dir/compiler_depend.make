# Empty compiler generated dependencies file for rubis_advisor.
# This may be replaced when dependencies are built.
