file(REMOVE_RECURSE
  "CMakeFiles/rubis_advisor.dir/rubis_advisor.cpp.o"
  "CMakeFiles/rubis_advisor.dir/rubis_advisor.cpp.o.d"
  "rubis_advisor"
  "rubis_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubis_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
