
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/advisor/CMakeFiles/nose_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/nose_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/nose_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/nose_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/enumerator/CMakeFiles/nose_enumerator.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/nose_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/nose_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/nose_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nose_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/nose_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nose_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
