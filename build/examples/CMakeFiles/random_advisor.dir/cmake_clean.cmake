file(REMOVE_RECURSE
  "CMakeFiles/random_advisor.dir/random_advisor.cpp.o"
  "CMakeFiles/random_advisor.dir/random_advisor.cpp.o.d"
  "random_advisor"
  "random_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
