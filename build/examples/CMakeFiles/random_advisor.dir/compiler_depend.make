# Empty compiler generated dependencies file for random_advisor.
# This may be replaced when dependencies are built.
