file(REMOVE_RECURSE
  "libnose_enumerator.a"
)
