file(REMOVE_RECURSE
  "CMakeFiles/nose_enumerator.dir/enumerator.cc.o"
  "CMakeFiles/nose_enumerator.dir/enumerator.cc.o.d"
  "libnose_enumerator.a"
  "libnose_enumerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_enumerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
