# Empty compiler generated dependencies file for nose_enumerator.
# This may be replaced when dependencies are built.
