file(REMOVE_RECURSE
  "libnose_randwl.a"
)
