# Empty dependencies file for nose_randwl.
# This may be replaced when dependencies are built.
