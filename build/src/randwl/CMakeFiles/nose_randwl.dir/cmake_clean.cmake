file(REMOVE_RECURSE
  "CMakeFiles/nose_randwl.dir/random_workload.cc.o"
  "CMakeFiles/nose_randwl.dir/random_workload.cc.o.d"
  "libnose_randwl.a"
  "libnose_randwl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_randwl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
