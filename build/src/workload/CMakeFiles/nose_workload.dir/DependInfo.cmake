
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/query.cc" "src/workload/CMakeFiles/nose_workload.dir/query.cc.o" "gcc" "src/workload/CMakeFiles/nose_workload.dir/query.cc.o.d"
  "/root/repo/src/workload/update.cc" "src/workload/CMakeFiles/nose_workload.dir/update.cc.o" "gcc" "src/workload/CMakeFiles/nose_workload.dir/update.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/nose_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/nose_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/nose_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nose_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
