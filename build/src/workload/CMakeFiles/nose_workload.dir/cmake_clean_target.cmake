file(REMOVE_RECURSE
  "libnose_workload.a"
)
