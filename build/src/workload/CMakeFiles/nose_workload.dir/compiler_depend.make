# Empty compiler generated dependencies file for nose_workload.
# This may be replaced when dependencies are built.
