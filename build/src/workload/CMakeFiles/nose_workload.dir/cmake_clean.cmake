file(REMOVE_RECURSE
  "CMakeFiles/nose_workload.dir/query.cc.o"
  "CMakeFiles/nose_workload.dir/query.cc.o.d"
  "CMakeFiles/nose_workload.dir/update.cc.o"
  "CMakeFiles/nose_workload.dir/update.cc.o.d"
  "CMakeFiles/nose_workload.dir/workload.cc.o"
  "CMakeFiles/nose_workload.dir/workload.cc.o.d"
  "libnose_workload.a"
  "libnose_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
