file(REMOVE_RECURSE
  "CMakeFiles/nose_model.dir/entity.cc.o"
  "CMakeFiles/nose_model.dir/entity.cc.o.d"
  "CMakeFiles/nose_model.dir/entity_graph.cc.o"
  "CMakeFiles/nose_model.dir/entity_graph.cc.o.d"
  "CMakeFiles/nose_model.dir/field.cc.o"
  "CMakeFiles/nose_model.dir/field.cc.o.d"
  "CMakeFiles/nose_model.dir/key_path.cc.o"
  "CMakeFiles/nose_model.dir/key_path.cc.o.d"
  "libnose_model.a"
  "libnose_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
