file(REMOVE_RECURSE
  "libnose_model.a"
)
