
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/entity.cc" "src/model/CMakeFiles/nose_model.dir/entity.cc.o" "gcc" "src/model/CMakeFiles/nose_model.dir/entity.cc.o.d"
  "/root/repo/src/model/entity_graph.cc" "src/model/CMakeFiles/nose_model.dir/entity_graph.cc.o" "gcc" "src/model/CMakeFiles/nose_model.dir/entity_graph.cc.o.d"
  "/root/repo/src/model/field.cc" "src/model/CMakeFiles/nose_model.dir/field.cc.o" "gcc" "src/model/CMakeFiles/nose_model.dir/field.cc.o.d"
  "/root/repo/src/model/key_path.cc" "src/model/CMakeFiles/nose_model.dir/key_path.cc.o" "gcc" "src/model/CMakeFiles/nose_model.dir/key_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nose_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
