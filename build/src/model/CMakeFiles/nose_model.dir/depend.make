# Empty dependencies file for nose_model.
# This may be replaced when dependencies are built.
