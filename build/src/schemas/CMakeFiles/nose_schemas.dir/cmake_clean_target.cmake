file(REMOVE_RECURSE
  "libnose_schemas.a"
)
