file(REMOVE_RECURSE
  "CMakeFiles/nose_schemas.dir/normalized.cc.o"
  "CMakeFiles/nose_schemas.dir/normalized.cc.o.d"
  "libnose_schemas.a"
  "libnose_schemas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_schemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
