# Empty dependencies file for nose_schemas.
# This may be replaced when dependencies are built.
