file(REMOVE_RECURSE
  "libnose_planner.a"
)
