# Empty dependencies file for nose_planner.
# This may be replaced when dependencies are built.
