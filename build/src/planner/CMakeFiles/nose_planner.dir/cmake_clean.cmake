file(REMOVE_RECURSE
  "CMakeFiles/nose_planner.dir/plan.cc.o"
  "CMakeFiles/nose_planner.dir/plan.cc.o.d"
  "CMakeFiles/nose_planner.dir/plan_space.cc.o"
  "CMakeFiles/nose_planner.dir/plan_space.cc.o.d"
  "CMakeFiles/nose_planner.dir/update_planner.cc.o"
  "CMakeFiles/nose_planner.dir/update_planner.cc.o.d"
  "libnose_planner.a"
  "libnose_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
