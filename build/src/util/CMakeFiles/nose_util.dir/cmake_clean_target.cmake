file(REMOVE_RECURSE
  "libnose_util.a"
)
