# Empty dependencies file for nose_util.
# This may be replaced when dependencies are built.
