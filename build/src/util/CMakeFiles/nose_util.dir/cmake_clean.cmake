file(REMOVE_RECURSE
  "CMakeFiles/nose_util.dir/rng.cc.o"
  "CMakeFiles/nose_util.dir/rng.cc.o.d"
  "CMakeFiles/nose_util.dir/status.cc.o"
  "CMakeFiles/nose_util.dir/status.cc.o.d"
  "CMakeFiles/nose_util.dir/strings.cc.o"
  "CMakeFiles/nose_util.dir/strings.cc.o.d"
  "CMakeFiles/nose_util.dir/value.cc.o"
  "CMakeFiles/nose_util.dir/value.cc.o.d"
  "libnose_util.a"
  "libnose_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
