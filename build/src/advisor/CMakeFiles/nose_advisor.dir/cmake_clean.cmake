file(REMOVE_RECURSE
  "CMakeFiles/nose_advisor.dir/advisor.cc.o"
  "CMakeFiles/nose_advisor.dir/advisor.cc.o.d"
  "libnose_advisor.a"
  "libnose_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
