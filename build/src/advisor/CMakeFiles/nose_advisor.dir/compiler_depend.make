# Empty compiler generated dependencies file for nose_advisor.
# This may be replaced when dependencies are built.
