file(REMOVE_RECURSE
  "libnose_advisor.a"
)
