# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("model")
subdirs("parser")
subdirs("workload")
subdirs("schema")
subdirs("cost")
subdirs("solver")
subdirs("planner")
subdirs("enumerator")
subdirs("optimizer")
subdirs("advisor")
subdirs("store")
subdirs("executor")
subdirs("schemas")
subdirs("rubis")
subdirs("randwl")
subdirs("export")
subdirs("cli")
