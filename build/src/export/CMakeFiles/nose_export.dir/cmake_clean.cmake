file(REMOVE_RECURSE
  "CMakeFiles/nose_export.dir/cql.cc.o"
  "CMakeFiles/nose_export.dir/cql.cc.o.d"
  "libnose_export.a"
  "libnose_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
