file(REMOVE_RECURSE
  "libnose_export.a"
)
