# Empty compiler generated dependencies file for nose_export.
# This may be replaced when dependencies are built.
