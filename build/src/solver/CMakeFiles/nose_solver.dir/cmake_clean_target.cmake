file(REMOVE_RECURSE
  "libnose_solver.a"
)
