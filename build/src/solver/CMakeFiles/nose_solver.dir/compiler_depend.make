# Empty compiler generated dependencies file for nose_solver.
# This may be replaced when dependencies are built.
