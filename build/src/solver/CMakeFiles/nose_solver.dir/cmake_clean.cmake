file(REMOVE_RECURSE
  "CMakeFiles/nose_solver.dir/bip.cc.o"
  "CMakeFiles/nose_solver.dir/bip.cc.o.d"
  "CMakeFiles/nose_solver.dir/lp.cc.o"
  "CMakeFiles/nose_solver.dir/lp.cc.o.d"
  "libnose_solver.a"
  "libnose_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
