# Empty dependencies file for nose_parser.
# This may be replaced when dependencies are built.
