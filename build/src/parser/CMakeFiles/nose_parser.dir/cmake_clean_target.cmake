file(REMOVE_RECURSE
  "libnose_parser.a"
)
