
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parser/lexer.cc" "src/parser/CMakeFiles/nose_parser.dir/lexer.cc.o" "gcc" "src/parser/CMakeFiles/nose_parser.dir/lexer.cc.o.d"
  "/root/repo/src/parser/model_parser.cc" "src/parser/CMakeFiles/nose_parser.dir/model_parser.cc.o" "gcc" "src/parser/CMakeFiles/nose_parser.dir/model_parser.cc.o.d"
  "/root/repo/src/parser/statement_parser.cc" "src/parser/CMakeFiles/nose_parser.dir/statement_parser.cc.o" "gcc" "src/parser/CMakeFiles/nose_parser.dir/statement_parser.cc.o.d"
  "/root/repo/src/parser/workload_parser.cc" "src/parser/CMakeFiles/nose_parser.dir/workload_parser.cc.o" "gcc" "src/parser/CMakeFiles/nose_parser.dir/workload_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/nose_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/nose_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nose_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
