file(REMOVE_RECURSE
  "CMakeFiles/nose_parser.dir/lexer.cc.o"
  "CMakeFiles/nose_parser.dir/lexer.cc.o.d"
  "CMakeFiles/nose_parser.dir/model_parser.cc.o"
  "CMakeFiles/nose_parser.dir/model_parser.cc.o.d"
  "CMakeFiles/nose_parser.dir/statement_parser.cc.o"
  "CMakeFiles/nose_parser.dir/statement_parser.cc.o.d"
  "CMakeFiles/nose_parser.dir/workload_parser.cc.o"
  "CMakeFiles/nose_parser.dir/workload_parser.cc.o.d"
  "libnose_parser.a"
  "libnose_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
