file(REMOVE_RECURSE
  "libnose_schema.a"
)
