file(REMOVE_RECURSE
  "CMakeFiles/nose_schema.dir/column_family.cc.o"
  "CMakeFiles/nose_schema.dir/column_family.cc.o.d"
  "CMakeFiles/nose_schema.dir/schema.cc.o"
  "CMakeFiles/nose_schema.dir/schema.cc.o.d"
  "libnose_schema.a"
  "libnose_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
