# Empty compiler generated dependencies file for nose_schema.
# This may be replaced when dependencies are built.
