# Empty dependencies file for nose_optimizer.
# This may be replaced when dependencies are built.
