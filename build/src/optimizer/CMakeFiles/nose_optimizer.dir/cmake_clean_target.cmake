file(REMOVE_RECURSE
  "libnose_optimizer.a"
)
