file(REMOVE_RECURSE
  "CMakeFiles/nose_optimizer.dir/combinatorial.cc.o"
  "CMakeFiles/nose_optimizer.dir/combinatorial.cc.o.d"
  "CMakeFiles/nose_optimizer.dir/schema_optimizer.cc.o"
  "CMakeFiles/nose_optimizer.dir/schema_optimizer.cc.o.d"
  "libnose_optimizer.a"
  "libnose_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
