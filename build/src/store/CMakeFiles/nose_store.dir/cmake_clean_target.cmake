file(REMOVE_RECURSE
  "libnose_store.a"
)
