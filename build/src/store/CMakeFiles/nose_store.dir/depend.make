# Empty dependencies file for nose_store.
# This may be replaced when dependencies are built.
