file(REMOVE_RECURSE
  "CMakeFiles/nose_store.dir/record_store.cc.o"
  "CMakeFiles/nose_store.dir/record_store.cc.o.d"
  "libnose_store.a"
  "libnose_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
