file(REMOVE_RECURSE
  "libnose_executor.a"
)
