file(REMOVE_RECURSE
  "CMakeFiles/nose_executor.dir/dataset.cc.o"
  "CMakeFiles/nose_executor.dir/dataset.cc.o.d"
  "CMakeFiles/nose_executor.dir/loader.cc.o"
  "CMakeFiles/nose_executor.dir/loader.cc.o.d"
  "CMakeFiles/nose_executor.dir/plan_executor.cc.o"
  "CMakeFiles/nose_executor.dir/plan_executor.cc.o.d"
  "libnose_executor.a"
  "libnose_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
