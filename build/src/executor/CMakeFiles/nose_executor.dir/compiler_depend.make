# Empty compiler generated dependencies file for nose_executor.
# This may be replaced when dependencies are built.
