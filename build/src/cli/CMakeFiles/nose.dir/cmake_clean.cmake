file(REMOVE_RECURSE
  "CMakeFiles/nose.dir/main.cc.o"
  "CMakeFiles/nose.dir/main.cc.o.d"
  "nose"
  "nose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
