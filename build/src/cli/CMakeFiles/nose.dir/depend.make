# Empty dependencies file for nose.
# This may be replaced when dependencies are built.
