file(REMOVE_RECURSE
  "libnose_rubis.a"
)
