file(REMOVE_RECURSE
  "CMakeFiles/nose_rubis.dir/datagen.cc.o"
  "CMakeFiles/nose_rubis.dir/datagen.cc.o.d"
  "CMakeFiles/nose_rubis.dir/expert_schema.cc.o"
  "CMakeFiles/nose_rubis.dir/expert_schema.cc.o.d"
  "CMakeFiles/nose_rubis.dir/model.cc.o"
  "CMakeFiles/nose_rubis.dir/model.cc.o.d"
  "CMakeFiles/nose_rubis.dir/workload.cc.o"
  "CMakeFiles/nose_rubis.dir/workload.cc.o.d"
  "libnose_rubis.a"
  "libnose_rubis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_rubis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
