# Empty dependencies file for nose_rubis.
# This may be replaced when dependencies are built.
