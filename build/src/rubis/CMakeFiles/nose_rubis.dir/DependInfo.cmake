
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rubis/datagen.cc" "src/rubis/CMakeFiles/nose_rubis.dir/datagen.cc.o" "gcc" "src/rubis/CMakeFiles/nose_rubis.dir/datagen.cc.o.d"
  "/root/repo/src/rubis/expert_schema.cc" "src/rubis/CMakeFiles/nose_rubis.dir/expert_schema.cc.o" "gcc" "src/rubis/CMakeFiles/nose_rubis.dir/expert_schema.cc.o.d"
  "/root/repo/src/rubis/model.cc" "src/rubis/CMakeFiles/nose_rubis.dir/model.cc.o" "gcc" "src/rubis/CMakeFiles/nose_rubis.dir/model.cc.o.d"
  "/root/repo/src/rubis/workload.cc" "src/rubis/CMakeFiles/nose_rubis.dir/workload.cc.o" "gcc" "src/rubis/CMakeFiles/nose_rubis.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/nose_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/executor/CMakeFiles/nose_executor.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/nose_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nose_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/nose_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nose_util.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/nose_store.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/nose_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/nose_cost.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
