file(REMOVE_RECURSE
  "libnose_cost.a"
)
