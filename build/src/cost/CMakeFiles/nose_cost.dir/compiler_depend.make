# Empty compiler generated dependencies file for nose_cost.
# This may be replaced when dependencies are built.
