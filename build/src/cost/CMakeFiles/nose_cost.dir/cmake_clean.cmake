file(REMOVE_RECURSE
  "CMakeFiles/nose_cost.dir/cardinality.cc.o"
  "CMakeFiles/nose_cost.dir/cardinality.cc.o.d"
  "CMakeFiles/nose_cost.dir/cost_model.cc.o"
  "CMakeFiles/nose_cost.dir/cost_model.cc.o.d"
  "libnose_cost.a"
  "libnose_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nose_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
