# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/rubis_test[1]_include.cmake")
include("/root/repo/build/tests/enumerator_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/randwl_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/update_planner_test[1]_include.cmake")
include("/root/repo/build/tests/solver_extra_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/executor_edge_test[1]_include.cmake")
include("/root/repo/build/tests/export_test[1]_include.cmake")
include("/root/repo/build/tests/plan_space_invariants_test[1]_include.cmake")
