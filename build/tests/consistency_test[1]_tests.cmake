add_test([=[ConsistencyTest.AllSchemasAgreeOnEveryQueryAndSurviveUpdates]=]  /root/repo/build/tests/consistency_test [==[--gtest_filter=ConsistencyTest.AllSchemasAgreeOnEveryQueryAndSurviveUpdates]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ConsistencyTest.AllSchemasAgreeOnEveryQueryAndSurviveUpdates]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  consistency_test_TESTS ConsistencyTest.AllSchemasAgreeOnEveryQueryAndSurviveUpdates)
