file(REMOVE_RECURSE
  "CMakeFiles/randwl_test.dir/randwl_test.cc.o"
  "CMakeFiles/randwl_test.dir/randwl_test.cc.o.d"
  "randwl_test"
  "randwl_test.pdb"
  "randwl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randwl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
