# Empty compiler generated dependencies file for randwl_test.
# This may be replaced when dependencies are built.
