file(REMOVE_RECURSE
  "CMakeFiles/rubis_test.dir/rubis_test.cc.o"
  "CMakeFiles/rubis_test.dir/rubis_test.cc.o.d"
  "rubis_test"
  "rubis_test.pdb"
  "rubis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
