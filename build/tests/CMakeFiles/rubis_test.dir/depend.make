# Empty dependencies file for rubis_test.
# This may be replaced when dependencies are built.
