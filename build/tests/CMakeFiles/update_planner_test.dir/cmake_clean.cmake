file(REMOVE_RECURSE
  "CMakeFiles/update_planner_test.dir/update_planner_test.cc.o"
  "CMakeFiles/update_planner_test.dir/update_planner_test.cc.o.d"
  "update_planner_test"
  "update_planner_test.pdb"
  "update_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
