file(REMOVE_RECURSE
  "CMakeFiles/plan_space_invariants_test.dir/plan_space_invariants_test.cc.o"
  "CMakeFiles/plan_space_invariants_test.dir/plan_space_invariants_test.cc.o.d"
  "plan_space_invariants_test"
  "plan_space_invariants_test.pdb"
  "plan_space_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_space_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
