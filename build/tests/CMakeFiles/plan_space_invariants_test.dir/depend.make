# Empty dependencies file for plan_space_invariants_test.
# This may be replaced when dependencies are built.
